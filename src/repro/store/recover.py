"""Warm restart: reopen a store in O(1) and replay the WAL tail.

:func:`open_store` is the crash-safe open path:

1. load + validate the manifest (the commit point of the last
   checkpoint);
2. ``mmap`` the slab and **adopt** the persisted buffers — trusted O(1)
   constructors all the way up (``CSR.adopt`` → ``BiAdjacency`` →
   ``BiEdgeList.frozen`` → ``NWHypergraph.from_frozen``), no parsing, no
   validation scans, no copies;
3. scan the WAL: records at or below the manifest's ``base_version`` are
   stale (a checkpoint committed but crashed before resetting the log)
   and are skipped; a torn tail is truncated back to the last committed
   record; surviving batches replay in order onto a
   :class:`DurableDynamicHypergraph`, which continues appending new
   batches to the same log.

The result is a :class:`StoreHandle`: the serving layer registers its
``dynamic`` directly, rehydrates recorded hot s-line graphs when they
are still current, and checkpoints via :meth:`StoreHandle.checkpoint`
(fold the overlay, write a fresh snapshot, reset the WAL).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.hypergraph import NWHypergraph
from repro.core.slinegraph import SLineGraph
from repro.dynamic.hypergraph import ApplyResult, DynamicHypergraph
from repro.dynamic.log import parse_batch
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList, EdgeList

from .manifest import (
    Manifest,
    StoreCorruptError,
    StoreError,
    load_manifest,
)
from .slab import SlabFile
from .snapshot import cleanup_orphan_slabs, write_snapshot
from .wal import WriteAheadLog, read_wal

__all__ = [
    "DurableDynamicHypergraph",
    "RecoveryReport",
    "StoreHandle",
    "open_store",
    "read_store",
]


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`open_store` did to reach a consistent state."""

    base_version: int
    version: int
    replayed_batches: int
    replayed_ops: int
    skipped_records: int
    torn_tail: bool
    truncated_bytes: int
    reason: str = ""

    def as_dict(self) -> dict:
        return {
            "base_version": self.base_version,
            "version": self.version,
            "replayed_batches": self.replayed_batches,
            "replayed_ops": self.replayed_ops,
            "skipped_records": self.skipped_records,
            "torn_tail": self.torn_tail,
            "truncated_bytes": self.truncated_bytes,
            "reason": self.reason,
        }


class DurableDynamicHypergraph(DynamicHypergraph):
    """A :class:`DynamicHypergraph` whose batches survive the process.

    ``apply`` appends the batch to the write-ahead log *after* the
    in-memory apply succeeds and *before* returning — under the same
    reentrant lock, so the WAL's version order always matches the apply
    order.  A failed append poisons the instance (further writes refuse)
    rather than let memory silently diverge from disk; the caller never
    saw an acknowledgment for the lost batch, so a restart recovering
    the committed prefix is correct.

    ``compact`` becomes a durable checkpoint when owned by a
    :class:`StoreHandle` (snapshot + WAL reset); unowned instances fall
    back to the in-memory fold.
    """

    def __init__(
        self,
        base: NWHypergraph,
        wal: WriteAheadLog,
        version: int = 0,
        tracer: object = None,
        metrics: object = None,
    ) -> None:
        super().__init__(base, tracer=tracer, metrics=metrics, version=version)
        self._wal = wal
        self._wal_failed = False
        self._checkpoint_cb = None

    def apply(self, batch: object) -> ApplyResult:
        mutations = parse_batch(batch)
        with self._lock:
            if self._wal_failed:
                raise StoreError(
                    "store is read-only: a WAL append failed and the "
                    "in-memory state can no longer be made durable"
                )
            result = super().apply(mutations)
            try:
                self._wal.append(result.version, mutations)
            except (OSError, ValueError) as exc:
                self._wal_failed = True
                raise StoreError(
                    f"WAL append for version {result.version} failed: {exc}"
                ) from exc
            return result

    def replay(self, version: int, mutations: object) -> ApplyResult:
        """Apply an already-durable batch without re-logging it."""
        with self._lock:
            result = super().apply(mutations)
            if result.version != version:
                raise StoreCorruptError(
                    f"replay produced version {result.version}, WAL record "
                    f"says {version}"
                )
            return result

    def compact(self) -> NWHypergraph:
        with self._lock:
            cb = self._checkpoint_cb
            if cb is not None:
                cb()
                return self._base
            return super().compact()


class StoreHandle:
    """One opened store: the durable hypergraph plus its disk resources."""

    def __init__(
        self,
        directory: Path,
        manifest: Manifest,
        slab: SlabFile,
        dynamic: DurableDynamicHypergraph,
        recovery: RecoveryReport,
        include_adjoin: bool,
        metrics: object = None,
        tracer: object = None,
    ) -> None:
        from repro.obs.metrics import as_metrics
        from repro.obs.tracer import as_tracer

        self.directory = directory
        self.manifest = manifest
        self.slab = slab
        self.dynamic = dynamic
        self.recovery = recovery
        self._include_adjoin = include_adjoin
        self._metrics = as_metrics(metrics)
        self._tracer = as_tracer(tracer)
        self._closed = False
        dynamic._checkpoint_cb = self.checkpoint

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def version(self) -> int:
        return self.dynamic.version

    def hypergraph(self) -> NWHypergraph:
        """Frozen snapshot of the current (replayed) state."""
        return self.dynamic.snapshot()

    def hot_linegraphs(self) -> dict[tuple[int, bool], SLineGraph]:
        """Recorded hot s-line graphs, **iff** they are still current.

        Hot entries describe the snapshot state; any replayed WAL batch
        invalidates them (the serving layer rebuilds lazily instead).
        """
        if self.dynamic.version != self.manifest.base_version:
            self._metrics.counter("store.hot_skipped_stale").inc()
            return {}
        out: dict[tuple[int, bool], SLineGraph] = {}
        for spec in self.manifest.hot:
            weights = (
                self.slab.array(spec["weights"])
                if spec.get("weights")
                else None
            )
            el = EdgeList(
                self.slab.array(spec["src"]),
                self.slab.array(spec["dst"]),
                weights,
                num_vertices=int(spec["num_vertices"]),
            )
            key = (int(spec["s"]), bool(spec["over_edges"]))
            out[key] = SLineGraph(el, s=key[0], over_edges=key[1])
            self._metrics.counter("store.hot_rehydrated").inc()
        return out

    def checkpoint(self, recompute_hot: bool = True) -> Manifest:
        """Fold the overlay, write a fresh snapshot, reset the WAL.

        Runs under the dynamic's lock so concurrent appliers serialize
        against the checkpoint.  ``recompute_hot`` rebuilds the same
        ``(s, over_edges)`` hot set the manifest recorded, over the new
        state.
        """
        if self._closed:
            raise StoreError(f"store {self.directory} is closed")
        dyn = self.dynamic
        with dyn._lock, self._tracer.span(
            "store.checkpoint", dataset=self.name, version=dyn.version
        ):
            base = DynamicHypergraph.compact(dyn)
            hot: dict[tuple[int, bool], SLineGraph] = {}
            if recompute_hot:
                for spec in self.manifest.hot:
                    s = int(spec["s"])
                    over_edges = bool(spec["over_edges"])
                    hot[(s, over_edges)] = base.s_linegraph(
                        s, over_edges=over_edges
                    )
            # checkpoints inherit the encoding the store was built with
            compress = any(
                spec.get("encoding") == "varint"
                for key, spec in self.manifest.csrs.items()
                if key != "incidence"
            )
            manifest = write_snapshot(
                self.directory,
                base,
                self.name,
                base_version=dyn.version,
                hot=hot,
                include_adjoin=self._include_adjoin,
                compress=compress,
                metrics=self._metrics,
                tracer=self._tracer,
            )
            dyn._wal.reset()
            self.manifest = manifest
            return manifest

    def verify(self) -> list[str]:
        """Checksum every slab payload; names of corrupt arrays (or [])."""
        return self.slab.verify()

    def wal_stats(self) -> dict:
        return self.dynamic._wal.stats()

    def stats(self) -> dict:
        """JSON-safe handle summary (served by ``stats``/``inspect``)."""
        return {
            "directory": str(self.directory),
            "name": self.name,
            "base_version": self.manifest.base_version,
            "version": self.version,
            "slab": self.manifest.slab,
            "slab_bytes": self.manifest.slab_bytes(),
            "arrays": len(self.manifest.arrays),
            "hot": len(self.manifest.hot),
            "recovery": self.recovery.as_dict(),
            "wal": self.wal_stats(),
        }

    def close(self) -> None:
        """Close the WAL and drop the slab mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self.dynamic._checkpoint_cb = None
            self.dynamic._wal.close()
            self.slab.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreHandle({str(self.directory)!r}, name={self.name!r}, "
            f"version={self.version})"
        )


def _adopt_csr(slab: SlabFile, spec: dict) -> CSR:
    """CSR over slab views, per one manifest composition record.

    Plain sections adopt the mmap pages in O(1).  Varint sections
    (``"encoding": "varint"``, written by ``build_store(compress=True)``)
    decode once here — the slab stays compressed on disk and in the page
    cache; only the decoded indices are freshly allocated.
    """
    if spec.get("encoding") == "varint":
        from repro.structures.compressed import CompressedCSR

        return CompressedCSR.adopt(
            slab.array(spec["indptr"]),
            slab.array(spec["offsets"]),
            slab.array(spec["data"]),
            slab.array(spec["weights"]) if spec.get("weights") else None,
            num_targets=int(spec["num_targets"]),
            sorted_rows=bool(spec.get("sorted", True)),
        ).to_csr()
    return CSR.adopt(
        slab.array(spec["indptr"]),
        slab.array(spec["indices"]),
        slab.array(spec["weights"]) if spec.get("weights") else None,
        num_targets=int(spec["num_targets"]),
        sorted_rows=bool(spec.get("sorted", True)),
    )


def open_store(
    directory: str | os.PathLike,
    metrics: object = None,
    tracer: object = None,
) -> StoreHandle:
    """Open a store for serving: O(1) mmap adoption + WAL tail replay."""
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    metrics = as_metrics(metrics)
    directory = Path(directory)
    with as_tracer(tracer).span("store.open", directory=str(directory)) as span:
        manifest = load_manifest(directory)
        slab = SlabFile(directory / manifest.slab, manifest.arrays)
        wal: WriteAheadLog | None = None
        handle: StoreHandle | None = None
        try:
            metrics.counter("store.mmap_bytes").inc(slab.nbytes())
            inc = manifest.csrs["incidence"]
            el = BiEdgeList.frozen(
                slab.array(inc["part0"]),
                slab.array(inc["part1"]),
                slab.array(inc["weights"]) if inc.get("weights") else None,
                n0=manifest.num_edges,
                n1=manifest.num_nodes,
            )
            bi = BiAdjacency(
                _adopt_csr(slab, manifest.csrs["bi.edges"]),
                _adopt_csr(slab, manifest.csrs["bi.nodes"]),
            )
            include_adjoin = "adjoin.graph" in manifest.csrs
            adjoin = None
            if include_adjoin:
                adjoin = AdjoinGraph(
                    _adopt_csr(slab, manifest.csrs["adjoin.graph"]),
                    manifest.num_edges,
                    manifest.num_nodes,
                )
            base = NWHypergraph.from_frozen(el, biadjacency=bi, adjoin=adjoin)

            # opening the writer truncates any torn tail; the re-scan after
            # that is guaranteed clean
            wal = WriteAheadLog(directory / manifest.wal, metrics=metrics)
            tail = wal.recovered_tail
            records, _ = read_wal(directory / manifest.wal)
            dynamic = DurableDynamicHypergraph(
                base,
                wal,
                version=manifest.base_version,
                tracer=tracer,
                metrics=metrics,
            )
            skipped = 0
            replayed_ops = 0
            expected = manifest.base_version + 1
            with as_tracer(tracer).span(
                "store.replay", records=len(records)
            ) as replay_span:
                for record in records:
                    if record.version <= manifest.base_version:
                        skipped += 1
                        continue
                    if record.version != expected:
                        raise StoreCorruptError(
                            f"WAL gap: expected version {expected}, found "
                            f"{record.version}"
                        )
                    dynamic.replay(record.version, list(record.mutations))
                    replayed_ops += len(record.mutations)
                    expected += 1
                replay_span.set(skipped=skipped, ops=replayed_ops)
            replayed = expected - manifest.base_version - 1
            metrics.counter("store.replayed_batches").inc(replayed)
            metrics.counter("store.replayed_ops").inc(replayed_ops)
            recovery = RecoveryReport(
                base_version=manifest.base_version,
                version=dynamic.version,
                replayed_batches=replayed,
                replayed_ops=replayed_ops,
                skipped_records=skipped,
                torn_tail=tail.torn,
                truncated_bytes=tail.torn_bytes,
                reason=tail.reason,
            )
            span.set(
                version=dynamic.version,
                replayed=replayed,
                torn=tail.torn,
            )
            handle = StoreHandle(
                directory,
                manifest,
                slab,
                dynamic,
                recovery,
                include_adjoin,
                metrics=metrics,
                tracer=tracer,
            )
        finally:
            if handle is None:
                # adoption or replay failed (corrupt manifest, WAL gap):
                # the mmap and the WAL append handle must not outlive
                # the error — a leaked mapping pins the slab file and a
                # leaked WAL handle blocks a clean re-open
                if wal is not None:
                    wal.close()
                slab.close()
    cleanup_orphan_slabs(directory, manifest)
    return handle


def read_store(directory: str | os.PathLike) -> BiEdgeList:
    """Materialize a store's current state as a plain :class:`BiEdgeList`.

    The transparent-read path behind ``read_any``: opens the store,
    replays the WAL tail, and returns *copies* (safe to use after the
    mapping is closed).  Incidence weights survive only when no mutation
    was ever applied — the mutation vocabulary is unweighted, matching
    :meth:`DynamicHypergraph.snapshot`.
    """
    handle = open_store(directory)
    try:
        el = handle.hypergraph()._el
        return BiEdgeList(
            el.part0.copy(),
            el.part1.copy(),
            None if el.weights is None else el.weights.copy(),
            n0=el.num_vertices(0),
            n1=el.num_vertices(1),
        )
    finally:
        handle.close()

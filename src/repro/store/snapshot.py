"""Snapshot writer: freeze a hypergraph (and friends) into a store.

One snapshot = one slab file + one manifest.  The slab carries, page
aligned:

* the deduplicated incidence list (``incidence.part0/part1[/weights]``)
  — the source of truth, what :meth:`replay <repro.store.recover>` and
  ``read_any`` reconstruct from;
* both bi-adjacency CSRs (``bi.edges.*`` / ``bi.nodes.*``) — so the O(1)
  open path adopts them without re-indexing;
* optionally the adjoin CSR (``adjoin.graph.*``);
* optionally hot s-line-graph edge lists (``hot.<i>.*``) recorded for
  cache rehydration on warm restart.

Commit protocol: the slab is written to ``data-<version>.slab.tmp``,
fsync'd, renamed to its final name, and only *then* the manifest is
atomically replaced — the manifest rename is the commit point.  A crash
anywhere before it leaves the previous snapshot fully intact (at worst
an orphan slab file, cleaned up opportunistically); a crash after it is
a completed checkpoint whose stale WAL records are skipped by version on
the next open.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.hypergraph import NWHypergraph
from repro.core.slinegraph import SLineGraph

from .manifest import Manifest, save_manifest
from .slab import SlabWriter
from .wal import WriteAheadLog

__all__ = ["build_store", "write_snapshot"]


def _csr_section(
    writer: SlabWriter, prefix: str, csr: object, compress: bool = False
) -> dict:
    """Write one CSR's buffers; return its manifest composition record.

    With ``compress`` the adjacency column is persisted delta+varint
    encoded (``{prefix}.offsets`` + ``{prefix}.data``; format in
    :class:`repro.structures.compressed.CompressedCSR`) and the record
    carries ``"encoding": "varint"`` so recovery knows to decode.
    Unsorted rows cannot be delta-encoded; such a CSR silently falls
    back to the plain layout rather than failing the snapshot.
    """
    if compress and csr.has_sorted_rows:
        ccsr = csr.compress()
        writer.add(f"{prefix}.indptr", ccsr.indptr)
        writer.add(f"{prefix}.offsets", ccsr.offsets)
        writer.add(f"{prefix}.data", ccsr.data)
        spec = {
            "encoding": "varint",
            "indptr": f"{prefix}.indptr",
            "offsets": f"{prefix}.offsets",
            "data": f"{prefix}.data",
            "weights": None,
            "num_targets": csr.num_targets(),
            "sorted": True,
        }
        if ccsr.weights is not None:
            writer.add(f"{prefix}.weights", ccsr.weights)
            spec["weights"] = f"{prefix}.weights"
        return spec
    writer.add(f"{prefix}.indptr", csr.indptr)
    writer.add(f"{prefix}.indices", csr.indices)
    spec = {
        "indptr": f"{prefix}.indptr",
        "indices": f"{prefix}.indices",
        "weights": None,
        "num_targets": csr.num_targets(),
        "sorted": bool(csr.has_sorted_rows),
    }
    if csr.weights is not None:
        writer.add(f"{prefix}.weights", csr.weights)
        spec["weights"] = f"{prefix}.weights"
    return spec


def write_snapshot(
    directory: str | os.PathLike,
    hypergraph: NWHypergraph,
    name: str,
    base_version: int = 0,
    hot: dict[tuple[int, bool], SLineGraph] | None = None,
    include_adjoin: bool = True,
    compress: bool = False,
    metrics: object = None,
    tracer: object = None,
) -> Manifest:
    """Persist ``hypergraph`` as the store snapshot at ``base_version``.

    ``hot`` maps ``(s, over_edges)`` to the line graphs to record for
    warm-restart cache rehydration.  ``compress`` stores the CSR
    adjacency columns delta+varint encoded (smaller slab; open pays a
    one-time decode).  Returns the committed manifest.
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    metrics = as_metrics(metrics)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slab_name = f"data-{int(base_version)}.slab"
    tmp = directory / (slab_name + ".tmp")
    with as_tracer(tracer).span(
        "store.snapshot", dataset=name, base_version=int(base_version)
    ) as span:
        el = hypergraph._el
        bi = hypergraph.biadjacency
        writer = SlabWriter(tmp)
        writer.add("incidence.part0", el.part0)
        writer.add("incidence.part1", el.part1)
        incidence_weights = None
        if el.weights is not None:
            writer.add("incidence.weights", el.weights)
            incidence_weights = "incidence.weights"
        csrs = {
            "bi.edges": _csr_section(
                writer, "bi.edges", bi.edges, compress=compress
            ),
            "bi.nodes": _csr_section(
                writer, "bi.nodes", bi.nodes, compress=compress
            ),
        }
        if include_adjoin:
            adjoin = hypergraph.adjoin_graph
            csrs["adjoin.graph"] = _csr_section(
                writer, "adjoin.graph", adjoin.graph, compress=compress
            )
        hot_specs: list[dict] = []
        for i, ((s, over_edges), lg) in enumerate(sorted((hot or {}).items())):
            hel = lg.edgelist
            writer.add(f"hot.{i}.src", hel.src)
            writer.add(f"hot.{i}.dst", hel.dst)
            spec = {
                "s": int(s),
                "over_edges": bool(over_edges),
                "src": f"hot.{i}.src",
                "dst": f"hot.{i}.dst",
                "weights": None,
                "num_vertices": hel.num_vertices(),
            }
            if hel.weights is not None:
                writer.add(f"hot.{i}.weights", hel.weights)
                spec["weights"] = f"hot.{i}.weights"
            hot_specs.append(spec)
        entries = writer.finish()
        os.replace(tmp, directory / slab_name)
        manifest = Manifest(
            name=name,
            base_version=int(base_version),
            num_edges=hypergraph.number_of_edges(),
            num_nodes=hypergraph.number_of_nodes(),
            num_incidences=int(el.part0.size),
            arrays=entries,
            csrs={
                "incidence": {
                    "part0": "incidence.part0",
                    "part1": "incidence.part1",
                    "weights": incidence_weights,
                },
                **csrs,
            },
            hot=hot_specs,
            slab=slab_name,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        )
        save_manifest(directory, manifest)
        metrics.counter("store.snapshots_total").inc()
        span.set(
            arrays=len(entries),
            slab_bytes=manifest.slab_bytes(),
            hot=len(hot_specs),
        )
    cleanup_orphan_slabs(directory, manifest)
    return manifest


def cleanup_orphan_slabs(
    directory: str | os.PathLike, manifest: Manifest
) -> list[str]:
    """Best-effort removal of slab files the manifest no longer references.

    Orphans appear when a checkpoint crashed between writing its slab
    and committing its manifest (harmless), or after a successful
    checkpoint replaced the previous snapshot.  Unlinking is safe even
    with live mappings — POSIX keeps the inode until the last mapping
    goes away.
    """
    directory = Path(directory)
    removed: list[str] = []
    keep = {manifest.slab}
    for path in directory.glob("data-*.slab*"):
        if path.name in keep:
            continue
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:
            pass  # still open elsewhere or already gone — try next time
    return removed


def build_store(
    directory: str | os.PathLike,
    source: object,
    name: str | None = None,
    warm_s: tuple[int, ...] = (),
    warm_over_edges: bool = True,
    include_adjoin: bool = True,
    compress: bool = False,
    metrics: object = None,
    tracer: object = None,
) -> Manifest:
    """Create a fresh store at version 0 from ``source``.

    ``source`` is anything :meth:`HypergraphStore.register
    <repro.service.store.HypergraphStore>` resolves — an
    ``NWHypergraph``, a ``BiEdgeList``, a dataset file path, or a Table I
    stand-in name.  ``warm_s`` lists s-values whose line graphs (built
    over ``warm_over_edges``) are persisted as hot cache entries.
    ``compress`` persists CSR adjacency columns varint-encoded; later
    checkpoints keep whichever encoding the store was built with.
    """
    from repro.core.hypergraph import NWHypergraph as NWH
    from repro.structures.edgelist import BiEdgeList

    if isinstance(source, NWH):
        hg = source
    elif isinstance(source, BiEdgeList):
        hg = NWH(
            source.part0,
            source.part1,
            source.weights,
            num_edges=source.num_vertices(0),
            num_nodes=source.num_vertices(1),
        )
    else:
        from repro.io.loader import load_hypergraph

        hg = load_hypergraph(str(source))
    directory = Path(directory)
    if name is None:
        candidate = str(source) if not isinstance(source, (NWH, BiEdgeList)) else ""
        stem = Path(candidate).stem if candidate else ""
        name = stem or directory.name or "hypergraph"
    hot = {
        (int(s), bool(warm_over_edges)): hg.s_linegraph(
            int(s), over_edges=warm_over_edges
        )
        for s in warm_s
    }
    manifest = write_snapshot(
        directory,
        hg,
        name,
        base_version=0,
        hot=hot,
        include_adjoin=include_adjoin,
        compress=compress,
        metrics=metrics,
        tracer=tracer,
    )
    # materialize an empty WAL so the store is complete on disk
    WriteAheadLog(directory / manifest.wal, metrics=metrics).close()
    return manifest

"""Hygra baseline — the comparator of Figures 7 and 8.

Hygra (Shun, PPoPP'20 [25]) represents hypergraphs as bipartite structures
and drives everything through ``edgeMap`` over *frontiers* (vertex
subsets).  The two algorithms the paper benchmarks against:

* **HygraBFS** — top-down only frontier BFS (no direction optimization);
* **HygraCC** — frontier-based label propagation: each round only the
  vertices whose label changed last round push to their neighbors.

Re-implementing these algorithm choices on this repo's substrate isolates
exactly the algorithmic difference the paper's comparison is about
(direction-optimization + Afforest vs. top-down + LP).  The scheduling
difference is modeled in the benchmark harness: Hygra (OpenMP, blocked
static loops) runs on a static/blocked runtime, NWHy (oneTBB) on the
work-stealing/cyclic runtime — see DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.hyperbfs import hyperbfs_top_down
from repro.graph.traversal import gather_neighbors
from repro.parallel.atomics import write_min
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency

__all__ = ["hygra_bfs", "hygra_cc"]


def hygra_bfs(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool = False,
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """HygraBFS: strictly top-down bipartite BFS.

    Semantically identical to NWHy's HyperBFS — distances agree exactly;
    the work/scheduling profile (never switching to bottom-up) is what
    Figs. 7–8 compare.
    """
    return hyperbfs_top_down(h, source, source_is_edge, runtime=runtime)


def hygra_cc(
    h: BiAdjacency,
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """HygraCC: frontier-based label-propagation CC (edgeMap style).

    Starts with every entity active; each round, only entities whose label
    improved push to the opposite index set.  Converges to the same
    canonical consolidated-ID labels as HyperCC/AdjoinCC.
    """
    ne, nv = h.vertex_cardinality
    edge_labels = np.arange(ne, dtype=np.int64)
    node_labels = np.arange(ne, ne + nv, dtype=np.int64)
    edge_frontier = np.arange(ne, dtype=np.int64)
    node_frontier = np.arange(nv, dtype=np.int64)
    rounds = 0
    while edge_frontier.size or node_frontier.size:
        rounds += 1
        new_nodes = _push_frontier(
            h.edges, edge_labels, node_labels, edge_frontier, runtime,
            phase=f"hygracc_E_{rounds}",
        )
        new_edges = _push_frontier(
            h.nodes, node_labels, edge_labels, node_frontier, runtime,
            phase=f"hygracc_N_{rounds}",
        )
        node_frontier, edge_frontier = new_nodes, new_edges
    return edge_labels, node_labels


def _push_frontier(
    graph,
    from_labels: np.ndarray,
    to_labels: np.ndarray,
    frontier: np.ndarray,
    runtime: ParallelRuntime | None,
    phase: str,
) -> np.ndarray:
    """Push ``from_labels`` along the frontier's incidence; return changed IDs."""
    if frontier.size == 0:
        return frontier

    def body(chunk: np.ndarray) -> TaskResult:
        src, dst = gather_neighbors(graph, chunk)
        before = to_labels[dst]
        write_min(to_labels, dst, from_labels[src])
        improved = np.unique(dst[to_labels[dst] < before])
        return TaskResult(improved, float(dst.size + chunk.size))

    if runtime is None:
        parts = [body(frontier).value]
    else:
        parts = runtime.parallel_for(
            runtime.partition(frontier), body, phase=phase
        )
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))

"""Baseline implementations the paper compares against (Hygra)."""

from .hygra import hygra_bfs, hygra_cc

__all__ = ["hygra_bfs", "hygra_cc"]

"""Execution backends — where ``parallel_for`` bodies actually run.

The :class:`~repro.parallel.runtime.ParallelRuntime` models *scheduling*
(chunk placement, makespans, Figs. 7–8); a backend decides *execution*:

* :class:`SimulatedBackend` — chunk bodies run serially in the calling
  thread, exactly the pre-backend behavior.  Still the default: results
  are deterministic under any schedule, and the cost-model ledger is the
  paper-scaling instrument.
* :class:`ThreadedBackend` — a persistent ``ThreadPoolExecutor``.  The
  hot kernels are NumPy-vectorized and release the GIL, so pure bodies
  overlap on real cores (the generalization of the old
  ``linegraph/threaded.py`` one-off).
* :class:`ProcessBackend` — a persistent process pool.  Bodies must be
  picklable (the builder kernels of :mod:`repro.linegraph.kernels` are);
  large read-only inputs travel as :mod:`repro.parallel.shared` handles,
  so workers attach CSR buffers zero-copy instead of unpickling
  megabyte arrays per task.  Non-picklable bodies (e.g. the service
  engine's batch closures) transparently degrade to the backend's
  internal thread pool — counted, never wrong.

Every backend returns results in **submission order**, so the runtime's
determinism contract (bit-identical values across backends and
schedules) holds by construction; only wall-clock time differs.
"""

from __future__ import annotations

import os
import pickle
from contextlib import contextmanager
from typing import Any, Callable, Sequence

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "ThreadedBackend",
    "default_workers",
    "make_backend",
]

def _registry() -> dict:
    """Name → backend class; the single source of backend-name truth.

    Resolved lazily (the classes are defined below); consumers that need
    the valid names — ``make_backend``, the wire protocol's batch
    envelope validation — read :data:`BACKEND_NAMES` or call
    ``make_backend`` instead of hard-coding the tuple.
    """
    return {
        "simulated": SimulatedBackend,
        "threaded": ThreadedBackend,
        "process": ProcessBackend,
    }


def default_workers(bound: int = 32) -> int:
    """Bounded ``os.cpu_count()`` — the pool size real backends default to."""
    return max(1, min(int(bound), os.cpu_count() or 1))


class ExecutionBackend:
    """Common surface of the three backends.

    ``concurrent`` tells the runtime whether routing through
    :meth:`map` buys real overlap (False routes bodies through the
    runtime's own serial loop, which also supports shuffled execution
    and per-task monitor hooks).  ``in_process`` tells it whether a
    :class:`~repro.check.races.RaceDetector` can observe body accesses
    (worker *threads* share the checked arrays; worker *processes*
    cannot).
    """

    name = "abstract"
    concurrent = False
    in_process = True

    def __init__(self, workers: int | None = None) -> None:
        self.workers = (
            default_workers() if workers is None else max(1, int(workers))
        )
        #: tasks that degraded to the fallback pool (process backend only)
        self.fallback_tasks = 0

    def map(
        self,
        body: Callable[[Any], Any],
        chunks: Sequence[Any],
        monitor=None,
    ) -> list[Any]:
        """Run ``body`` over chunks; results in submission order."""
        raise NotImplementedError

    @contextmanager
    def share(self, *objs):
        """Prepare large read-only inputs for this backend's workers.

        Default: objects pass through unchanged (same-address-space
        backends need no transport).  The process backend overrides this
        to export CSRs/arrays into shared memory for the duration of the
        ``with`` block.
        """
        yield objs

    def close(self) -> None:
        """Shut down any pools (idempotent; pools are lazily recreated)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


def _monitored(body, monitor):
    """Bracket each task with the race detector's begin/end hooks.

    The detector keys the current task in a ``threading.local``, so the
    bracketing must happen *on the worker thread* running the body —
    this wrapper travels with the task.
    """
    if monitor is None:
        return lambda item: body(item[1])

    def run(item):
        index, chunk = item
        monitor.begin_task(int(index))
        try:
            return body(chunk)
        finally:
            monitor.end_task()

    return run


class SimulatedBackend(ExecutionBackend):
    """Marker backend: the runtime keeps its own serial execution loop."""

    name = "simulated"
    concurrent = False
    in_process = True

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=1 if workers is None else workers)

    def map(self, body, chunks, monitor=None):
        run = _monitored(body, monitor)
        return [run((i, chunk)) for i, chunk in enumerate(chunks)]


class ThreadedBackend(ExecutionBackend):
    """Persistent thread pool for pure, GIL-releasing bodies."""

    name = "threaded"
    concurrent = True
    in_process = True

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool = None

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-backend",
            )
        return self._pool

    def map(self, body, chunks, monitor=None):
        if not chunks:
            return []
        run = _monitored(body, monitor)
        items = list(enumerate(chunks))
        if len(items) == 1 or self.workers == 1:
            return [run(item) for item in items]
        from concurrent.futures import wait

        futures = [self._executor().submit(run, item) for item in items]
        wait(futures)  # all settle before any result/exception surfaces
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _run_remote(payload: bytes) -> Any:
    """Worker-side task entry: unpickle ``(body, chunk)`` and run it.

    Module-level (not a closure) so the *entry point* itself always
    pickles; the interesting pickling — kernel + shared handles — is in
    the payload.
    """
    body, chunk = pickle.loads(payload)
    return body(chunk)


class ProcessBackend(ExecutionBackend):
    """Persistent process pool with zero-copy shared-CSR transport.

    Bodies must be picklable module-level callables (see
    :mod:`repro.linegraph.kernels`); inputs shared via :meth:`share`
    cross as ~100-byte handles.  A non-picklable body degrades to an
    internal :class:`ThreadedBackend` (``fallback_tasks`` counts chunks
    served that way) so call sites never have to care.
    """

    name = "process"
    concurrent = True
    in_process = False

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool = None
        self._fallback: ThreadedBackend | None = None

    def _executor(self):
        if self._pool is None:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else "spawn")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._pool

    @staticmethod
    def _picklable(body) -> bool:
        try:
            pickle.dumps(body)
            return True
        except (pickle.PicklingError, TypeError, AttributeError):
            # closures/lambdas/bound locals — the fallback pool serves them
            return False

    @staticmethod
    def _mapped_handle(obj):
        """A zero-copy mmap handle when ``obj`` lives in an open store slab.

        Resolved only when :mod:`repro.store.slab` is already imported —
        a process that never opened a store pays nothing, not even the
        import.  Mapped handles reference a store-owned file, so they
        are never released by :meth:`share`.
        """
        import sys

        slab = sys.modules.get("repro.store.slab")
        if slab is None:
            return None
        import numpy as np

        if isinstance(obj, np.ndarray):
            return slab.handle_of(obj)
        return slab.csr_handle_of(obj)

    @contextmanager
    def share(self, *objs):
        """Export CSRs/ndarrays for the block's scope — shm or mmap.

        Arrays backed by an open store slab ship as
        :class:`~repro.store.slab.MappedArray` handles (no copy at all);
        everything else is exported into POSIX shared memory (the one
        copy the scheme ever makes) and released when the block exits.
        """
        import numpy as np

        from .shared import SharedArray, SharedCSR, SharedCompressedCSR

        shared = []
        out = []
        seen: dict[int, Any] = {}  # same object shared twice -> one block
        try:
            for obj in objs:
                if id(obj) in seen:
                    out.append(seen[id(obj)])
                    continue
                if obj is None:
                    out.append(None)
                    continue
                if isinstance(obj, np.ndarray):
                    handle = self._mapped_handle(obj) or SharedArray.create(obj)
                elif hasattr(obj, "offsets") and hasattr(obj, "decode_rows"):
                    # CompressedCSR: has indptr but no indices column, so
                    # test before the generic CSR duck-type — the shm
                    # blocks carry the compressed bytes, workers decode
                    handle = SharedCompressedCSR.create(obj)
                elif hasattr(obj, "indptr") and hasattr(obj, "indices"):
                    handle = self._mapped_handle(obj) or SharedCSR.create(obj)
                else:  # scalars and small picklables travel by value
                    out.append(obj)
                    continue
                if isinstance(
                    handle, (SharedArray, SharedCSR, SharedCompressedCSR)
                ):
                    shared.append(handle)  # owner must release shm blocks
                seen[id(obj)] = handle
                out.append(handle)
            yield tuple(out)
        finally:
            for handle in shared:
                handle.release()

    def map(self, body, chunks, monitor=None):
        if not chunks:
            return []
        if not self._picklable(body):
            if self._fallback is None:
                self._fallback = ThreadedBackend(self.workers)
            self.fallback_tasks += len(chunks)
            return self._fallback.map(body, chunks, monitor=monitor)
        # monitor hooks are meaningless across a process boundary: the
        # detector's CheckedArrays live in the parent (in_process=False
        # tells the runtime not to expect task brackets here)
        payloads = [pickle.dumps((body, chunk)) for chunk in chunks]
        if len(payloads) == 1:
            return [_run_remote(payloads[0])]
        from concurrent.futures import wait

        pool = self._executor()
        futures = [pool.submit(_run_remote, p) for p in payloads]
        wait(futures)
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None


def make_backend(
    spec: "str | ExecutionBackend | None", workers: int | None = None
) -> ExecutionBackend:
    """Resolve a backend spec: a name, an instance, or ``None``.

    ``None`` means the default (simulated).  Passing an instance returns
    it unchanged (``workers`` must then be ``None`` — the instance owns
    its pool size).
    """
    if spec is None:
        spec = "simulated"
    if isinstance(spec, ExecutionBackend):
        if workers is not None and workers != spec.workers:
            raise ValueError(
                "workers cannot override an already-constructed backend"
            )
        return spec
    cls = _registry().get(spec)
    if cls is None:
        raise ValueError(
            f"unknown backend {spec!r}; choose from {list(BACKEND_NAMES)}"
        )
    return cls(workers)


#: the backend specs `make_backend` accepts (derived from the registry)
BACKEND_NAMES = tuple(_registry())

"""Zero-copy shared buffers for the process execution backend.

The process backend (:mod:`repro.parallel.backends`) runs chunk bodies in
a persistent worker-process pool.  Pickling a CSR per task would copy the
index/offset arrays — megabytes per task on the Table I stand-ins, and
exactly the overhead the paper's shared-memory oneTBB execution never
pays.  Instead the owner exports each array once into
``multiprocessing.shared_memory``; what crosses the process boundary is a
:class:`SharedArray` *handle* (block name + shape + dtype, ~100 bytes),
and workers attach the block read-only as an ``ndarray`` view — zero
copies of the data itself.

The handle protocol is deliberately backing-agnostic: :class:`BufferHandle`
/ :class:`CSRHandle` define the interface (picklable metadata, ``open`` to
an ndarray/CSR view, ``close``/``release`` lifecycle) and POSIX shared
memory is merely one provider.  :mod:`repro.store.slab` supplies a second
— :class:`~repro.store.slab.MappedArray` handles over page-aligned
memory-mapped store slabs — so a graph served from a durable store ships
to workers as a ~200-byte file reference instead of an shm copy.

Lifecycle contract (POSIX shm blocks outlive processes, so this is
strict):

* the **owner** creates handles (:meth:`SharedArray.create` /
  :meth:`SharedCSR.create`) and must call :meth:`close` + :meth:`unlink`
  (or the combined :meth:`release`) when the parallel phase is done —
  :meth:`repro.parallel.backends.ProcessBackend.share` does this
  automatically;
* **workers** attach via :func:`open_handles` (a context manager) for the
  duration of one task and must not return views of shared memory —
  results must be freshly allocated arrays, which everything built on
  ``np.unique``/``bincount``/boolean indexing already satisfies.

Module-level accounting (:func:`shared_stats`, :func:`debug_verify`)
tracks every owner-created block so tests and CI can assert that no shm
block leaks past a run — the same role
:meth:`~repro.service.cache.SLineGraphCache.debug_verify` plays for the
serving cache.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "BufferHandle",
    "CSRHandle",
    "CompressedCSRHandle",
    "SharedArray",
    "SharedCSR",
    "SharedCompressedCSR",
    "debug_verify",
    "open_handles",
    "shared_stats",
]

#: owner-created blocks still live: name -> nbytes (module-level so the
#: accounting survives handles being garbage collected)
_LIVE: dict[str, int] = {}
_LIVE_LOCK = threading.Lock()
_STATS = {"created": 0, "released": 0, "bytes_created": 0}


def _track_create(name: str, nbytes: int) -> None:
    with _LIVE_LOCK:
        _LIVE[name] = nbytes
        _STATS["created"] += 1
        _STATS["bytes_created"] += nbytes


def _track_release(name: str) -> None:
    with _LIVE_LOCK:
        if _LIVE.pop(name, None) is not None:
            _STATS["released"] += 1


def shared_stats() -> dict:
    """Accounting snapshot: blocks created/released/active and bytes."""
    with _LIVE_LOCK:
        return {
            "created": _STATS["created"],
            "released": _STATS["released"],
            "active": len(_LIVE),
            "active_bytes": sum(_LIVE.values()),
            "bytes_created": _STATS["bytes_created"],
        }


def debug_verify() -> None:
    """Assert every owner-created shm block has been released.

    Call at the end of a run (CI's backend-smoke job does): a live block
    here means some owner skipped ``release()`` and the POSIX object
    would outlive the process.
    """
    with _LIVE_LOCK:
        leaked = dict(_LIVE)
    if leaked:
        raise AssertionError(
            f"{len(leaked)} shared-memory block(s) never released: "
            f"{sorted(leaked)} ({sum(leaked.values())} bytes)"
        )


class BufferHandle:
    """Interface for a picklable handle to one out-of-process ndarray.

    A handle is small metadata (provider-specific: an shm block name, a
    file path + offset, ...) plus ``shape``/``dtype``; it pickles cheaply
    and reconstitutes the array on the far side:

    * :meth:`open` — attach (if needed) and return the ndarray view;
      read-only for non-owners.
    * :meth:`close` — detach this process's mapping (idempotent; the
      backing storage survives).
    * :meth:`release` — owner teardown: destroy backing storage that
      would otherwise outlive the process.  Providers whose storage is
      externally owned (a store's slab file) make this a no-op beyond
      ``close``.

    Providers: :class:`SharedArray` (POSIX shared memory) and
    :class:`~repro.store.slab.MappedArray` (mmap over a store slab).
    """

    __slots__ = ()

    shape: tuple[int, ...]
    dtype: str

    def open(self) -> np.ndarray:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def release(self) -> None:
        self.close()

    @property
    def nbytes(self) -> int:
        return (
            int(np.prod(self.shape, dtype=np.int64))
            * np.dtype(self.dtype).itemsize
        )


class CSRHandle:
    """A CSR whose three buffers are :class:`BufferHandle` instances.

    Carries the scalar metadata (``num_targets``, sortedness) alongside
    the ``indptr``/``indices``/optional ``weights`` handles; :meth:`open`
    rebuilds a :class:`~repro.structures.csr.CSR` over the attached views
    via the trusted O(1) adoption path (the buffers were validated when
    the owner exported them).
    """

    __slots__ = ("indptr", "indices", "weights", "num_targets", "sorted_rows")

    def __init__(
        self,
        indptr: BufferHandle,
        indices: BufferHandle,
        weights: BufferHandle | None,
        num_targets: int,
        sorted_rows: bool,
    ) -> None:
        self.indptr = indptr  # repro: noqa-R001 — BufferHandle, not a CSR buffer
        self.indices = indices  # repro: noqa-R001 — BufferHandle, not a CSR buffer
        self.weights = weights
        self.num_targets = int(num_targets)
        self.sorted_rows = bool(sorted_rows)

    @property
    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def __getstate__(self) -> tuple:
        return (
            self.indptr, self.indices, self.weights,
            self.num_targets, self.sorted_rows,
        )

    def __setstate__(self, state: tuple) -> None:
        (self.indptr, self.indices, self.weights,  # repro: noqa-R001 — handle fields
         self.num_targets, self.sorted_rows) = state

    def open(self):
        """Attach and rebuild the CSR over provider views (worker side)."""
        from repro.structures.csr import CSR

        return CSR.adopt(
            self.indptr.open(),
            self.indices.open(),
            None if self.weights is None else self.weights.open(),
            num_targets=self.num_targets,
            sorted_rows=self.sorted_rows,
        )

    def close(self) -> None:
        self.indptr.close()
        self.indices.close()
        if self.weights is not None:
            self.weights.close()

    def release(self) -> None:
        """Owner teardown of all three buffers (idempotent)."""
        self.indptr.release()
        self.indices.release()
        if self.weights is not None:
            self.weights.release()


class CompressedCSRHandle:
    """A :class:`~repro.structures.compressed.CompressedCSR` behind handles.

    Mirrors :class:`CSRHandle` for the four compressed buffers
    (``indptr``/``offsets``/``data``/optional ``weights``).  What crosses
    the process boundary (or persists in a store slab) is the delta+varint
    byte stream — typically several times smaller than the raw ``int64``
    ``indices`` column — and the **worker** pays the decode:
    :meth:`open` adopts the views and decodes to an ordinary CSR per
    task; :meth:`open_compressed` skips the decode for callers that want
    targeted :meth:`~repro.structures.compressed.CompressedCSR.decode_rows`
    access instead.
    """

    __slots__ = (
        "indptr", "offsets", "data", "weights", "num_targets", "sorted_rows",
    )

    def __init__(
        self,
        indptr: BufferHandle,
        offsets: BufferHandle,
        data: BufferHandle,
        weights: BufferHandle | None,
        num_targets: int,
        sorted_rows: bool,
    ) -> None:
        self.indptr = indptr  # repro: noqa-R001 — BufferHandle, not a CSR buffer
        self.offsets = offsets
        self.data = data
        self.weights = weights
        self.num_targets = int(num_targets)
        self.sorted_rows = bool(sorted_rows)

    @property
    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.offsets.nbytes + self.data.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def __getstate__(self) -> tuple:
        return (
            self.indptr, self.offsets, self.data, self.weights,
            self.num_targets, self.sorted_rows,
        )

    def __setstate__(self, state: tuple) -> None:
        (self.indptr, self.offsets, self.data, self.weights,  # repro: noqa-R001 — handle fields
         self.num_targets, self.sorted_rows) = state

    def open_compressed(self):
        """Attach and adopt the :class:`CompressedCSR` (no decode)."""
        from repro.structures.compressed import CompressedCSR

        return CompressedCSR.adopt(
            self.indptr.open(),
            self.offsets.open(),
            self.data.open(),
            None if self.weights is None else self.weights.open(),
            num_targets=self.num_targets,
            sorted_rows=self.sorted_rows,
        )

    def open(self):
        """Attach and decode to an ordinary CSR (worker side, per task).

        The decode output is freshly allocated, so kernels built on this
        satisfy the "no shared views escape the task" contract for free.
        """
        return self.open_compressed().to_csr()

    def close(self) -> None:
        self.indptr.close()
        self.offsets.close()
        self.data.close()
        if self.weights is not None:
            self.weights.close()

    def release(self) -> None:
        """Owner teardown of all four buffers (idempotent)."""
        self.indptr.release()
        self.offsets.release()
        self.data.release()
        if self.weights is not None:
            self.weights.release()


class SharedArray(BufferHandle):
    """A picklable handle to one ndarray stored in shared memory.

    Owner side: :meth:`create` copies the array into a fresh shm block
    (the one copy the scheme ever makes).  Worker side: unpickling
    transfers only ``(name, shape, dtype)``; :meth:`open` attaches and
    returns a read-only ndarray view.  ``weights=None`` columns are
    represented by ``None`` at the :class:`SharedCSR` level, never here.
    """

    __slots__ = ("name", "shape", "dtype", "_shm", "_owner")

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str) -> None:
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.dtype = str(dtype)
        self._shm: shared_memory.SharedMemory | None = None
        self._owner = False

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Export ``array`` into a new shm block (owner side)."""
        array = np.ascontiguousarray(array)
        # zero-size arrays still need a 1-byte block (shm forbids size=0)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[:] = array
        handle = cls(shm.name, array.shape, array.dtype.str)
        handle._shm = shm
        handle._owner = True
        _track_create(shm.name, max(1, array.nbytes))
        return handle

    # -- pickling: the handle travels, the attachment does not ----------------
    def __getstate__(self) -> tuple:
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state: tuple) -> None:
        self.name, self.shape, self.dtype = state
        self._shm = None
        self._owner = False

    # -- attachment -----------------------------------------------------------
    def open(self) -> np.ndarray:
        """Attach (if needed) and return the ndarray view of the block.

        Workers call this per task via :func:`open_handles`, which pairs
        it with :meth:`close` — the view must not escape the task.
        """
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        arr: np.ndarray = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf
        )
        if not self._owner:
            arr.flags.writeable = False
        return arr

    def close(self) -> None:
        """Detach this process's mapping (idempotent; keeps the block)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the block (owner side; after all workers detached)."""
        shm = self._shm
        try:
            if shm is None:
                shm = shared_memory.SharedMemory(name=self.name)
                self._shm = shm
            shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (double release is legal)
        finally:
            _track_release(self.name)

    def release(self) -> None:
        """Owner teardown: ``unlink`` then ``close``, any prior state."""
        self.unlink()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedArray({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, owner={self._owner})"
        )


class SharedCSR(CSRHandle):
    """A :class:`~repro.structures.csr.CSR` placed in shared memory.

    Wraps the three backing arrays (``indptr``/``indices``/optional
    ``weights``) as :class:`SharedArray` blocks plus the scalar metadata
    (``num_targets``, sortedness).  Pickles to ~300 bytes regardless of
    graph size; :meth:`open` reconstructs a CSR whose buffers are views
    into the shared blocks — the worker-side attach is O(1) in the data.
    """

    __slots__ = ()

    @classmethod
    def create(cls, csr) -> "SharedCSR":
        """Export a CSR's buffers into shared memory (owner side)."""
        return cls(
            SharedArray.create(csr.indptr),
            SharedArray.create(csr.indices),
            None if csr.weights is None else SharedArray.create(csr.weights),
            csr.num_targets(),
            csr.has_sorted_rows,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCSR(indptr={self.indptr.name}, "
            f"indices={self.indices.name}, nbytes={self.nbytes})"
        )


class SharedCompressedCSR(CompressedCSRHandle):
    """A :class:`~repro.structures.compressed.CompressedCSR` in shm.

    The shm sibling of :class:`SharedCSR`: the blocks hold the compressed
    byte stream plus offsets, so the transport footprint is the
    compressed size; workers decode on attach (see
    :class:`CompressedCSRHandle`).
    """

    __slots__ = ()

    @classmethod
    def create(cls, ccsr) -> "SharedCompressedCSR":
        """Export a CompressedCSR's buffers into shared memory."""
        return cls(
            SharedArray.create(ccsr.indptr),
            SharedArray.create(ccsr.offsets),
            SharedArray.create(ccsr.data),
            None if ccsr.weights is None else SharedArray.create(ccsr.weights),
            ccsr.num_targets(),
            ccsr.has_sorted_rows,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCompressedCSR(data={self.data.name}, "
            f"nbytes={self.nbytes})"
        )


def _is_shared(obj) -> bool:
    return isinstance(obj, (BufferHandle, CSRHandle, CompressedCSRHandle))


def _is_compressed_csr(obj) -> bool:
    # duck-typed to avoid importing repro.structures here
    return hasattr(obj, "decode_rows") and hasattr(obj, "to_csr")


@contextmanager
def open_handles(*objs):
    """Materialize a mixed tuple of handles and plain objects for one task.

    :class:`BufferHandle`/:class:`CSRHandle`/:class:`CompressedCSRHandle`
    entries (any provider — shm or mmap) are attached and yielded as
    ndarray/CSR; a plain
    :class:`~repro.structures.compressed.CompressedCSR` is decoded to its
    CSR (the simulated/threaded mirror of the worker-side decode); plain
    ndarrays, CSRs, and ``None`` pass through
    untouched — so kernels written against this helper run identically
    under the simulated, threaded, and process backends.  Attachments are
    closed on exit (worker tasks must copy anything they return).
    """
    opened = [
        obj.open()
        if _is_shared(obj)
        else (obj.to_csr() if _is_compressed_csr(obj) else obj)
        for obj in objs
    ]
    try:
        yield opened
    finally:
        for obj in objs:
            if _is_shared(obj):
                obj.close()

"""Chrome-trace export of simulated schedules (chrome://tracing format).

Turn a traced run into the standard ``traceEvents`` JSON that Chrome's
``about:tracing`` (or Perfetto) renders as a per-thread timeline — the
fastest way to *see* why blocked partitioning starves threads on skewed
inputs or how work stealing rebalances a phase.

Usage::

    rt = ParallelRuntime(num_threads=8, trace=True)
    some_algorithm(h, runtime=rt)
    export_chrome_trace(rt.ledger, "schedule.json")

Phases execute back to back (barriers), so each phase's events are offset
by the accumulated makespan of the phases before it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from .cost import RunLedger

__all__ = ["chrome_trace_events", "export_chrome_trace"]


def chrome_trace_events(ledger: RunLedger, pid: int = 0) -> list[dict]:
    """Build the ``traceEvents`` list (complete 'X' events, µs units).

    ``pid`` sets the process ID on every event so simulated schedules can
    share a timeline with wall-clock span events from other processes
    (see :func:`repro.obs.profile.merged_chrome_trace`).
    """
    events: list[dict] = []
    offset = 0.0
    for phase in ledger.phases:
        if phase.events:
            for task_id, thread, start, end in phase.events:
                events.append(
                    {
                        "name": f"{phase.name}[{task_id}]",
                        "cat": phase.name,
                        "ph": "X",
                        "ts": offset + start,
                        "dur": end - start,
                        "pid": pid,
                        "tid": thread,
                    }
                )
        if phase.serial_time:
            events.append(
                {
                    "name": f"{phase.name} (serial)",
                    "cat": "serial",
                    "ph": "X",
                    "ts": offset + (
                        float(phase.thread_time.max())
                        if phase.thread_time.size
                        else 0.0
                    ),
                    "dur": phase.serial_time,
                    "pid": pid,
                    "tid": 0,
                }
            )
        offset += phase.makespan
    return events


def export_chrome_trace(
    ledger: RunLedger, path: str | Path | TextIO
) -> int:
    """Write the trace JSON; returns the number of events written.

    Requires the run to have been executed with ``trace=True`` (phases
    without recorded events contribute only their serial markers).
    """
    events = chrome_trace_events(ledger)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        json.dump(payload, fh)
    finally:
        if close:
            fh.close()
    return len(events)

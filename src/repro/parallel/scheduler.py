"""Deterministic schedulers: static and work-stealing (list scheduling).

oneTBB executes a ``parallel_for`` by splitting the range into tasks and
letting a work-stealing scheduler place them: an idle thread steals the
oldest task from a victim's deque.  The *effect* that matters for the
paper's claims is that task completion order approximates **greedy list
scheduling** — each task starts on the thread that frees up first — which
is what :class:`WorkStealingScheduler` simulates with a deterministic
event-driven loop (ties broken by thread ID, so runs are reproducible).

:class:`StaticScheduler` models the no-stealing baseline
(``static_partitioner``): task *i* is pinned to thread ``i % p`` (or to the
thread its adaptor intended, one chunk per thread).  The gap between the
two schedulers on skewed inputs is the load-imbalance effect §III-D
describes.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from .cost import CostModel, PhaseLedger

__all__ = ["StaticScheduler", "WorkStealingScheduler", "make_scheduler"]


class StaticScheduler:
    """Pin task *i* to thread ``i % num_threads`` (round-robin, no stealing).

    When an adaptor produced exactly ``num_threads`` chunks (one per
    thread), round-robin degenerates to the intended 1:1 placement.
    """

    name = "static"

    def schedule(
        self,
        costs: Sequence[float],
        num_threads: int,
        model: CostModel,
        phase_name: str = "",
        record_events: bool = False,
    ) -> PhaseLedger:
        thread_time = np.zeros(num_threads, dtype=np.float64)
        events: list[tuple[int, int, float, float]] | None = (
            [] if record_events else None
        )
        for i, work in enumerate(costs):
            t = i % num_threads
            start = float(thread_time[t])
            thread_time[t] += model.task_cost(work)
            if events is not None:
                events.append((i, t, start, float(thread_time[t])))
        return PhaseLedger(
            name=phase_name,
            num_threads=num_threads,
            thread_time=thread_time,
            num_tasks=len(costs),
            num_steals=0,
            serial_time=model.serial_cost_per_phase,
            events=events,
        )


class WorkStealingScheduler:
    """Greedy event-driven placement approximating TBB work stealing.

    Tasks are released in submission order; each goes to the thread with
    the smallest accumulated busy time (ties → lowest thread ID).  A task
    landing on a thread other than ``i % p`` counts as a steal and pays
    ``model.steal_cost``.  This is the classic (2 − 1/p)-competitive greedy
    schedule — the right fidelity for reproducing scaling *shapes*.
    """

    name = "work_stealing"

    def schedule(
        self,
        costs: Sequence[float],
        num_threads: int,
        model: CostModel,
        phase_name: str = "",
        record_events: bool = False,
    ) -> PhaseLedger:
        thread_time = np.zeros(num_threads, dtype=np.float64)
        steals = 0
        events: list[tuple[int, int, float, float]] | None = (
            [] if record_events else None
        )
        # heap of (busy_time, thread_id): deterministic tie-break on id
        heap: list[tuple[float, int]] = [(0.0, t) for t in range(num_threads)]
        heapq.heapify(heap)
        for i, work in enumerate(costs):
            busy, t = heapq.heappop(heap)
            cost = model.task_cost(work)
            if t != i % num_threads:
                steals += 1
                cost += model.steal_cost
            start = busy
            busy += cost
            thread_time[t] = busy
            heapq.heappush(heap, (busy, t))
            if events is not None:
                events.append((i, t, start, busy))
        return PhaseLedger(
            name=phase_name,
            num_threads=num_threads,
            thread_time=thread_time,
            num_tasks=len(costs),
            num_steals=steals,
            serial_time=model.serial_cost_per_phase,
            events=events,
        )


_SCHEDULERS = {
    StaticScheduler.name: StaticScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
}


def make_scheduler(name: str) -> StaticScheduler | WorkStealingScheduler:
    """Look up a scheduler by name (``'static'`` or ``'work_stealing'``)."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None

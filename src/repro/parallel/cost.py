"""Cost model for the simulated parallel runtime.

The paper's strong-scaling figures (Figs. 7–8) and the load-balance claims
behind the cyclic adaptors and queue-based algorithms are all statements
about how *work* distributes over threads.  On this reproduction's 1-core
host, wall-clock scaling cannot be measured, so we account work explicitly:

* every task (chunk execution) reports a **cost** in abstract work units —
  by convention the number of incidences/edges it touched, the quantity
  that dominates the C++ kernels' runtime;
* a schedule assigns tasks to ``num_threads`` threads; the **makespan** is
  the maximum per-thread total, plus a serial fraction and a per-task
  scheduling overhead.

``simulated speedup(p) = makespan(1) / makespan(p)`` then reproduces the
*shape* of the paper's curves: near-linear for balanced work, flattening
under skew or serial fractions — deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostModel", "PhaseLedger", "RunLedger"]


@dataclass(frozen=True)
class CostModel:
    """Parameters mapping task costs to simulated time.

    Attributes
    ----------
    task_overhead:
        Fixed cost added per task (models TBB task spawn/steal overhead;
        makes many-tiny-chunk schedules measurably worse, as in practice).
    serial_cost_per_phase:
        Cost charged once per parallel phase regardless of thread count
        (frontier swap, reduction tree, etc.) — an Amdahl serial fraction.
    steal_cost:
        Cost charged per simulated steal event (work-stealing scheduler).
    """

    task_overhead: float = 1.0
    serial_cost_per_phase: float = 0.0
    steal_cost: float = 0.5

    def task_cost(self, work: float) -> float:
        """Simulated time for one task performing ``work`` units."""
        return float(work) + self.task_overhead


@dataclass
class PhaseLedger:
    """Accounting for one parallel phase (one ``parallel_for``)."""

    name: str
    num_threads: int
    thread_time: np.ndarray  # simulated busy time per thread
    num_tasks: int
    num_steals: int = 0
    serial_time: float = 0.0
    #: optional per-task schedule: (task_index, thread, start, end) —
    #: populated when the scheduler runs with event recording (tracing)
    events: list[tuple[int, int, float, float]] | None = None

    @property
    def makespan(self) -> float:
        """Simulated elapsed time of the phase."""
        busy = float(self.thread_time.max()) if self.thread_time.size else 0.0
        return busy + self.serial_time

    @property
    def total_work(self) -> float:
        return float(self.thread_time.sum()) + self.serial_time

    @property
    def load_imbalance(self) -> float:
        """max/mean per-thread time; 1.0 is perfectly balanced."""
        if not self.thread_time.size:
            return 1.0
        mean = float(self.thread_time.mean())
        return float(self.thread_time.max()) / mean if mean > 0 else 1.0


@dataclass
class RunLedger:
    """Accumulated phases of one algorithm run on the simulated runtime."""

    num_threads: int
    phases: list[PhaseLedger] = field(default_factory=list)

    def add(self, phase: PhaseLedger) -> None:
        self.phases.append(phase)

    @property
    def makespan(self) -> float:
        """Total simulated time: phases execute back to back (barriers)."""
        return float(sum(p.makespan for p in self.phases))

    @property
    def total_work(self) -> float:
        return float(sum(p.total_work for p in self.phases))

    @property
    def num_tasks(self) -> int:
        return int(sum(p.num_tasks for p in self.phases))

    @property
    def num_steals(self) -> int:
        return int(sum(p.num_steals for p in self.phases))

    def speedup_vs(self, baseline: "RunLedger") -> float:
        """Simulated strong-scaling speedup against a (1-thread) run."""
        if self.makespan == 0:
            return float("inf") if baseline.makespan > 0 else 1.0
        return baseline.makespan / self.makespan

    def timeline(self) -> list[tuple[str, float, float, int]]:
        """Per-phase profile: ``(name, makespan, load_imbalance, tasks)``.

        The introspection view behind "where did the time go?" — phases
        execute back to back, so the makespans sum to :attr:`makespan`.
        """
        return [
            (p.name, p.makespan, p.load_imbalance, p.num_tasks)
            for p in self.phases
        ]

    def dominant_phase(self) -> str | None:
        """Name of the phase contributing the most simulated time."""
        if not self.phases:
            return None
        return max(self.phases, key=lambda p: p.makespan).name

"""Real thread-pool execution for *pure* chunk bodies.

The simulated runtime models scheduling; this module actually runs chunk
bodies concurrently with ``concurrent.futures.ThreadPoolExecutor``.  The
hot kernels are NumPy vectorized and release the GIL, so on multi-core
hosts the pure construction bodies (two-hop counting, batched
intersection) overlap for real — the closest a pure-Python build gets to
the C++ original's parallelism.

Safety contract: bodies must be **pure** (no shared mutable state; results
returned, not written).  The s-line construction bodies satisfy this; the
frontier algorithms (BFS/CC), which mutate shared arrays, do not and must
stay on the deterministic simulated runtime.

This predates the general backend layer
(:mod:`repro.parallel.backends`) and survives as its thin ancestor:
:class:`ThreadedMap` now keeps a persistent executor (same semantics as
:class:`~repro.parallel.backends.ThreadedBackend`) and defaults its pool
size to a bounded ``os.cpu_count()`` instead of a hardcoded constant.
New code should reach for ``ParallelRuntime(backend='threaded')``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

from .backends import default_workers

__all__ = ["ThreadedMap", "thread_map"]


class ThreadedMap:
    """A reusable thread pool mapping pure bodies over chunks in order.

    ``num_workers=None`` (the default) sizes the pool to a bounded
    ``os.cpu_count()``.  The executor is created lazily on first use and
    persists across :meth:`map` calls; :meth:`close` (or use as a
    context manager) shuts it down.
    """

    def __init__(self, num_workers: int | None = None) -> None:
        if num_workers is None:
            num_workers = default_workers()
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-threadmap",
            )
        return self._pool

    def map(
        self, body: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        """Apply ``body`` to every chunk concurrently; results in order.

        Exceptions raised inside a body propagate (after all futures
        settle) — no partial results are returned.
        """
        if not chunks:
            return []
        if len(chunks) == 1 or self.num_workers == 1:
            return [body(c) for c in chunks]
        futures = [self._executor().submit(body, c) for c in chunks]
        wait(futures)  # let every body settle before raising
        return [f.result() for f in futures]

    def close(self) -> None:
        """Shut down the persistent executor (idempotent; lazily rebuilt)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedMap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def thread_map(
    body: Callable[[Any], Any],
    chunks: Sequence[Any],
    num_workers: int | None = None,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ThreadedMap`."""
    with ThreadedMap(num_workers) as pool:
        return pool.map(body, chunks)

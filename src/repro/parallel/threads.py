"""Real thread-pool execution for *pure* chunk bodies.

The simulated runtime models scheduling; this module actually runs chunk
bodies concurrently with ``concurrent.futures.ThreadPoolExecutor``.  The
hot kernels are NumPy vectorized and release the GIL, so on multi-core
hosts the pure construction bodies (two-hop counting, batched
intersection) overlap for real — the closest a pure-Python build gets to
the C++ original's parallelism.

Safety contract: bodies must be **pure** (no shared mutable state; results
returned, not written).  The s-line construction bodies satisfy this; the
frontier algorithms (BFS/CC), which mutate shared arrays, do not and must
stay on the deterministic simulated runtime.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

__all__ = ["ThreadedMap", "thread_map"]


class ThreadedMap:
    """A reusable thread pool mapping pure bodies over chunks in order."""

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)

    def map(
        self, body: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        """Apply ``body`` to every chunk concurrently; results in order.

        Exceptions raised inside a body propagate (after all futures
        settle) — no partial results are returned.
        """
        if not chunks:
            return []
        if len(chunks) == 1 or self.num_workers == 1:
            return [body(c) for c in chunks]
        with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            return list(pool.map(body, chunks))


def thread_map(
    body: Callable[[Any], Any],
    chunks: Sequence[Any],
    num_workers: int = 4,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ThreadedMap`."""
    return ThreadedMap(num_workers).map(body, chunks)

"""Work queues for the queue-based s-line algorithms (Algorithms 1–2).

Both of the paper's new algorithms begin by enqueuing work items — raw
hyperedge IDs (Algorithm 1) or candidate hyperedge *pairs* (Algorithm 2) —
into per-thread queues that are then concatenated and re-partitioned.  The
point of the queue is representation independence: items need not form a
contiguous ``[0, n_e)`` range, so permuted IDs and adjoin-consolidated IDs
work unchanged.

``ThreadLocalQueues`` models the per-thread ``queue_t`` / ``L_t(H)``
buffers; ``WorkQueue`` is the merged global queue with chunked draining.
Everything is array-backed so drained chunks feed vectorized kernels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ThreadLocalQueues", "WorkQueue"]

#: observation hook for the dynamic checkers (repro.check.races): when
#: set, every ThreadLocalQueues.push reports (thread, items).  A plain
#: module global keeps the disabled cost to one load + None test.
_push_hook = None


def _set_push_hook(hook) -> None:
    global _push_hook
    _push_hook = hook


class ThreadLocalQueues:
    """Per-thread append-only buffers merged with one concatenation.

    Parameters
    ----------
    num_threads:
        Number of thread-local buffers.
    width:
        Number of int64 columns per item (1 for IDs, 2 for ID pairs, 3 for
        weighted edges, ...).
    """

    __slots__ = ("_buffers", "width")

    def __init__(self, num_threads: int, width: int = 1) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if width <= 0:
            raise ValueError("width must be positive")
        self._buffers: list[list[np.ndarray]] = [[] for _ in range(num_threads)]
        self.width = int(width)

    @property
    def num_threads(self) -> int:
        return len(self._buffers)

    def push(self, thread: int, items: np.ndarray) -> None:
        """Append an ``(k, width)`` (or flat, if width==1) batch of items."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        if self.width == 1:
            items = items.reshape(-1, 1)
        if items.ndim != 2 or items.shape[1] != self.width:
            raise ValueError(
                f"expected shape (*, {self.width}), got {items.shape}"
            )
        if items.size:
            self._buffers[thread].append(items)
            if _push_hook is not None:
                _push_hook(thread, items)

    def merge(self) -> np.ndarray:
        """Concatenate every thread's buffer (thread order, then FIFO).

        Deterministic: the merge order is fixed, so downstream chunking is
        reproducible regardless of the simulated schedule that filled the
        buffers.
        """
        parts = [b for buf in self._buffers for b in buf]
        if not parts:
            out = np.empty((0, self.width), dtype=np.int64)
        else:
            out = np.concatenate(parts, axis=0)
        return out[:, 0] if self.width == 1 else out

    def sizes(self) -> np.ndarray:
        """Items currently buffered per thread (load-balance diagnostics)."""
        return np.array(
            [sum(b.shape[0] for b in buf) for buf in self._buffers],
            dtype=np.int64,
        )


class WorkQueue:
    """A merged, array-backed FIFO drained in chunks.

    Supports non-contiguous, permuted or adjoin-consolidated IDs — the
    entire reason the paper introduces queue-based construction.
    """

    __slots__ = ("_items", "_cursor")

    def __init__(self, items: np.ndarray | Sequence[int]) -> None:
        self._items = np.ascontiguousarray(items, dtype=np.int64)
        self._cursor = 0

    def __len__(self) -> int:
        return int(self._items.shape[0] - self._cursor)

    @property
    def items(self) -> np.ndarray:
        """Remaining items (view)."""
        return self._items[self._cursor :]

    def drain(self, max_items: int | None = None) -> np.ndarray:
        """Pop up to ``max_items`` items (all remaining when ``None``)."""
        end = (
            self._items.shape[0]
            if max_items is None
            else min(self._items.shape[0], self._cursor + int(max_items))
        )
        out = self._items[self._cursor : end]
        self._cursor = end
        return out

    def empty(self) -> bool:
        return len(self) == 0

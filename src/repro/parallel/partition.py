"""Range adaptors: blocked, cyclic, and cyclic-neighbor partitioning.

Paper §III-D: oneTBB's built-in ``blocked_range`` assigns contiguous chunks
of IDs to threads; NWHy adds a custom ``cyclic_range`` (thread *t* gets IDs
``t, t+nt, t+2nt, …``) and a ``cyclic_neighbor_range`` that pairs each ID
with its neighbor list.  Blocked partitioning is pathological on
skewed-degree inputs whose IDs are sorted by degree — the first few chunks
carry almost all the work — which is exactly what the cyclic adaptors fix.

Here an adaptor materializes a list of **chunks**; each chunk is an
``int64`` array of element IDs.  Chunks are the unit of scheduling for
:mod:`repro.parallel.scheduler`.  Bodies receive the ID array (and, for the
neighbor adaptor, a neighborhood view) so the enclosed kernels stay
vectorized per chunk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.structures.csr import CSR

__all__ = [
    "blocked_range",
    "cyclic_range",
    "cyclic_neighbor_range",
    "chunk_ids",
]


def _as_ids(ids: int | Sequence[int] | np.ndarray) -> np.ndarray:
    if isinstance(ids, (int, np.integer)):
        return np.arange(int(ids), dtype=np.int64)
    return np.ascontiguousarray(ids, dtype=np.int64)


def blocked_range(
    ids: int | Sequence[int] | np.ndarray, num_chunks: int
) -> list[np.ndarray]:
    """Split ``ids`` into ``num_chunks`` contiguous blocks (oneTBB default).

    ``ids`` may be a count (meaning ``range(ids)``) or an explicit ID array
    (possibly permuted — the queue-based algorithms rely on that).
    Returns at most ``num_chunks`` non-empty blocks.
    """
    ids = _as_ids(ids)
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    if ids.size == 0:
        return []
    pieces = np.array_split(ids, min(num_chunks, ids.size))
    return [p for p in pieces if p.size]


def cyclic_range(
    ids: int | Sequence[int] | np.ndarray, stride: int
) -> list[np.ndarray]:
    """Cyclic (strided) partition: chunk *t* holds ``ids[t::stride]``.

    With ``stride`` equal to the thread count this reproduces the paper's
    cyclic range adaptor: consecutive (potentially same-cost-class) IDs land
    on different threads, smoothing skew.
    """
    ids = _as_ids(ids)
    if stride <= 0:
        raise ValueError("stride must be positive")
    return [ids[t::stride] for t in range(stride) if ids[t::stride].size]


def cyclic_neighbor_range(
    graph: "CSR", num_bins: int, ids: Sequence[int] | np.ndarray | None = None
) -> list[tuple[np.ndarray, list[np.ndarray]]]:
    """Cyclic partition that pairs each ID with its neighborhood (§III-D).

    Returns chunks of ``(id_array, [neighbor_view, ...])`` so the body never
    re-derives offsets.  Mirrors the paper's adaptor returning
    ``(hyperedge, incident hypernodes)`` tuples.
    """
    base = _as_ids(graph.num_vertices() if ids is None else ids)
    chunks: list[tuple[np.ndarray, list[np.ndarray]]] = []
    for part in cyclic_range(base, num_bins):
        chunks.append((part, [graph[int(i)] for i in part]))
    return chunks


def chunk_ids(chunks: Sequence[np.ndarray]) -> Iterator[int]:
    """Flatten chunk ID arrays back to a single iterator (test helper)."""
    for chunk in chunks:
        arr = chunk[0] if isinstance(chunk, tuple) else chunk
        yield from (int(x) for x in arr)

"""Parallel substrate: simulated scheduling plus real execution backends.

Range adaptors (blocked/cyclic/cyclic-neighbor), deterministic static and
work-stealing schedulers, a cost model producing simulated makespans, work
queues for the paper's queue-based algorithms, and atomic-idiom helpers.
See DESIGN.md §2 for why this substitution preserves the paper's
scaling-behaviour claims on single-core hardware.

Since the backend layer landed, the same runtime can also *execute* pure
phases on a real thread or process pool (``backend='threaded'`` /
``'process'``) with zero-copy shared CSR transport — see docs/PARALLEL.md.
"""

from .atomics import compare_and_swap, fetch_or, write_max, write_min
from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SimulatedBackend,
    ThreadedBackend,
    default_workers,
    make_backend,
)
from .cost import CostModel, PhaseLedger, RunLedger
from .partition import blocked_range, cyclic_neighbor_range, cyclic_range
from .runtime import ParallelRuntime, TaskResult
from .scheduler import StaticScheduler, WorkStealingScheduler, make_scheduler
from .shared import SharedArray, SharedCSR, open_handles, shared_stats
from .shared import debug_verify as shared_debug_verify
from .threads import ThreadedMap, thread_map
from .trace import chrome_trace_events, export_chrome_trace
from .workqueue import ThreadLocalQueues, WorkQueue

__all__ = [
    "BACKEND_NAMES",
    "CostModel",
    "ExecutionBackend",
    "ParallelRuntime",
    "PhaseLedger",
    "ProcessBackend",
    "RunLedger",
    "SharedArray",
    "SharedCSR",
    "SimulatedBackend",
    "StaticScheduler",
    "ThreadedBackend",
    "ThreadedMap",
    "TaskResult",
    "ThreadLocalQueues",
    "WorkQueue",
    "WorkStealingScheduler",
    "blocked_range",
    "chrome_trace_events",
    "compare_and_swap",
    "cyclic_neighbor_range",
    "cyclic_range",
    "default_workers",
    "export_chrome_trace",
    "fetch_or",
    "make_backend",
    "open_handles",
    "shared_debug_verify",
    "shared_stats",
    "thread_map",
    "make_scheduler",
    "write_max",
    "write_min",
]

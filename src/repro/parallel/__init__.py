"""Simulated parallel substrate (the reproduction's oneTBB).

Range adaptors (blocked/cyclic/cyclic-neighbor), deterministic static and
work-stealing schedulers, a cost model producing simulated makespans, work
queues for the paper's queue-based algorithms, and atomic-idiom helpers.
See DESIGN.md §2 for why this substitution preserves the paper's
scaling-behaviour claims on single-core hardware.
"""

from .atomics import compare_and_swap, fetch_or, write_max, write_min
from .cost import CostModel, PhaseLedger, RunLedger
from .partition import blocked_range, cyclic_neighbor_range, cyclic_range
from .runtime import ParallelRuntime, TaskResult
from .scheduler import StaticScheduler, WorkStealingScheduler, make_scheduler
from .threads import ThreadedMap, thread_map
from .trace import chrome_trace_events, export_chrome_trace
from .workqueue import ThreadLocalQueues, WorkQueue

__all__ = [
    "CostModel",
    "ParallelRuntime",
    "PhaseLedger",
    "RunLedger",
    "StaticScheduler",
    "ThreadedMap",
    "TaskResult",
    "ThreadLocalQueues",
    "WorkQueue",
    "WorkStealingScheduler",
    "blocked_range",
    "chrome_trace_events",
    "compare_and_swap",
    "cyclic_neighbor_range",
    "cyclic_range",
    "export_chrome_trace",
    "fetch_or",
    "thread_map",
    "make_scheduler",
    "write_max",
    "write_min",
]

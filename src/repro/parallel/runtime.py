"""The simulated parallel runtime — this reproduction's "oneTBB".

A :class:`ParallelRuntime` executes ``parallel_for`` phases over chunked
ranges.  Chunk bodies run as ordinary Python (so results are exact and the
kernels inside stay vectorized); what is *simulated* is the placement of
chunks onto ``num_threads`` threads and the resulting per-thread busy
times, from which makespan/speedup derive (see :mod:`repro.parallel.cost`
for why this substitution preserves the paper's scaling claims).

Determinism contract: given the same ``(num_threads, partitioner,
scheduler, cost model)`` the simulated timings are identical run to run,
and the *computed values* are identical for **any** execution order — the
algorithms built on top use idempotent min/CAS combining
(:mod:`repro.parallel.atomics`).  ``execution_order='shuffled'`` lets tests
verify that second property by actually permuting body execution.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from .cost import CostModel, RunLedger
from .partition import blocked_range, cyclic_range
from .scheduler import make_scheduler

__all__ = ["ParallelRuntime", "TaskResult"]


class TaskResult:
    """Explicit ``(value, work)`` pair a chunk body may return.

    When a body returns a bare value, the runtime charges the chunk's
    element count as its work — the right default for per-element kernels.
    Returning ``TaskResult(value, work)`` lets irregular kernels (frontier
    expansion, hash counting) charge the incidences they actually touched.
    """

    __slots__ = ("value", "work")

    def __init__(self, value: Any, work: float) -> None:
        self.value = value
        self.work = float(work)


class ParallelRuntime:
    """Simulated work-stealing runtime with pluggable partitioning.

    Parameters
    ----------
    num_threads:
        Simulated thread count (the x-axis of Figs. 7–8).
    scheduler:
        ``'work_stealing'`` (default, models tbb::auto_partitioner +
        stealing) or ``'static'``.
    partitioner:
        Default range adaptor for :meth:`partition`: ``'blocked'`` or
        ``'cyclic'``.
    grain:
        Chunks per thread produced by :meth:`partition` (finer grain =
        better stealing, more per-task overhead — a real TBB trade-off the
        cost model reproduces).
    cost_model:
        See :class:`repro.parallel.cost.CostModel`.
    execution_order:
        ``'submission'`` (default) or ``'shuffled'`` — run chunk bodies in
        a seeded random order to exercise schedule-independence.
    seed:
        RNG seed for ``'shuffled'`` execution.
    trace:
        Record per-task (thread, start, end) schedule events, exportable
        with :func:`repro.parallel.trace.export_chrome_trace`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Every phase then also emits
        a **wall-clock** span named after the phase, annotated with the
        simulated makespan, task/steal counts, and total work — so one
        merged Perfetto timeline (see
        :func:`repro.obs.profile.merged_chrome_trace`) shows Python-level
        time next to the simulated schedule.  Defaults to the no-op
        tracer (near-zero overhead).
    """

    def __init__(
        self,
        num_threads: int = 1,
        scheduler: str = "work_stealing",
        partitioner: str = "blocked",
        grain: int = 4,
        cost_model: CostModel | None = None,
        execution_order: str = "submission",
        seed: int = 0,
        trace: bool = False,
        tracer=None,
    ) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if partitioner not in ("blocked", "cyclic"):
            raise ValueError("partitioner must be 'blocked' or 'cyclic'")
        if execution_order not in ("submission", "shuffled"):
            raise ValueError(
                "execution_order must be 'submission' or 'shuffled'"
            )
        if grain <= 0:
            raise ValueError("grain must be positive")
        self.num_threads = int(num_threads)
        self.scheduler = make_scheduler(scheduler)
        self.partitioner = partitioner
        self.grain = int(grain)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.execution_order = execution_order
        self.trace = bool(trace)
        from repro.obs.tracer import as_tracer

        self.tracer = as_tracer(tracer)
        self._rng = np.random.default_rng(seed)
        self.ledger = RunLedger(num_threads=self.num_threads)
        # dynamic race checking (repro.check.races): off by default — the
        # per-chunk cost of a disabled monitor is a single `is None` test
        self.monitor = None
        if os.environ.get("REPRO_CHECK"):
            self.checked()

    def checked(self, monitor=None) -> "ParallelRuntime":
        """Attach a race detector (``repro check``'s dynamic pass).

        Subsequent phases record per-task access sets of every
        :class:`~repro.check.races.CheckedArray` touched inside bodies
        and flag cross-task overlaps.  Returns ``self`` for chaining:
        ``runtime = ParallelRuntime(4).checked()``.
        """
        if monitor is None:
            from repro.check.races import RaceDetector

            monitor = RaceDetector()
        self.monitor = monitor
        install = getattr(monitor, "install_queue_hook", None)
        if install is not None:
            install()
        return self

    # -- bookkeeping -------------------------------------------------------------
    def new_run(self) -> RunLedger:
        """Start a fresh ledger (one algorithm invocation = one run)."""
        self.ledger = RunLedger(num_threads=self.num_threads)
        return self.ledger

    @property
    def makespan(self) -> float:
        return self.ledger.makespan

    # -- partitioning -----------------------------------------------------------------
    def partition(
        self, ids: int | Sequence[int] | np.ndarray
    ) -> list[np.ndarray]:
        """Chunk an ID range with the runtime's default adaptor and grain."""
        n_chunks = self.num_threads * self.grain
        if self.partitioner == "cyclic":
            return cyclic_range(ids, n_chunks)
        return blocked_range(ids, n_chunks)

    # -- execution -----------------------------------------------------------------------
    def parallel_for(
        self,
        chunks: Sequence[Any],
        body: Callable[[Any], Any],
        phase: str = "parallel_for",
    ) -> list[Any]:
        """Run ``body`` over every chunk; simulate the schedule; return values.

        Values are returned in **submission order** regardless of execution
        order, so callers can zip them with their chunks.
        """
        order = np.arange(len(chunks))
        if self.execution_order == "shuffled" and len(chunks) > 1:
            order = self._rng.permutation(len(chunks))
        values: list[Any] = [None] * len(chunks)
        costs = np.zeros(len(chunks), dtype=np.float64)
        mon = self.monitor
        with self.tracer.span("runtime." + phase) as span:
            if mon is not None:
                mon.begin_phase(phase)
            for i in order:
                if mon is not None:
                    mon.begin_task(int(i))
                out = body(chunks[i])
                if mon is not None:
                    mon.end_task()
                if isinstance(out, TaskResult):
                    values[i] = out.value
                    costs[i] = out.work
                else:
                    values[i] = out
                    costs[i] = _default_work(chunks[i])
            if mon is not None:
                mon.end_phase(phase)
            ledger = self.scheduler.schedule(
                costs,
                self.num_threads,
                self.cost_model,
                phase_name=phase,
                record_events=self.trace,
            )
            self.ledger.add(ledger)
            span.set(
                simulated_makespan=ledger.makespan,
                simulated_work=ledger.total_work,
                tasks=ledger.num_tasks,
                steals=ledger.num_steals,
                threads=self.num_threads,
            )
        return values

    def parallel_reduce(
        self,
        chunks: Sequence[Any],
        body: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        initial: Any,
        phase: str = "parallel_reduce",
    ) -> Any:
        """``parallel_for`` + deterministic left fold of the chunk values."""
        acc = initial
        for value in self.parallel_for(chunks, body, phase=phase):
            acc = combine(acc, value)
        return acc

    def serial_phase(self, work: float, phase: str = "serial") -> None:
        """Charge purely serial work (queue merge, prefix sums) to the run."""
        with self.tracer.span("runtime." + phase) as span:
            ledger = self.scheduler.schedule(
                [], self.num_threads, self.cost_model, phase_name=phase
            )
            ledger.serial_time += float(work)
            self.ledger.add(ledger)
            span.set(simulated_makespan=ledger.makespan, serial=True)


def _default_work(chunk: Any) -> float:
    """Element count of a chunk (ID array or (ids, neighborhoods) tuple)."""
    if isinstance(chunk, tuple):
        chunk = chunk[0]
    if isinstance(chunk, np.ndarray):
        return float(chunk.shape[0])
    try:
        return float(len(chunk))
    except TypeError:
        return 1.0

"""The simulated parallel runtime — this reproduction's "oneTBB".

A :class:`ParallelRuntime` executes ``parallel_for`` phases over chunked
ranges.  Chunk bodies run as ordinary Python (so results are exact and the
kernels inside stay vectorized); what is *simulated* is the placement of
chunks onto ``num_threads`` threads and the resulting per-thread busy
times, from which makespan/speedup derive (see :mod:`repro.parallel.cost`
for why this substitution preserves the paper's scaling claims).

Determinism contract: given the same ``(num_threads, partitioner,
scheduler, cost model)`` the simulated timings are identical run to run,
and the *computed values* are identical for **any** execution order — the
algorithms built on top use idempotent min/CAS combining
(:mod:`repro.parallel.atomics`).  ``execution_order='shuffled'`` lets tests
verify that second property by actually permuting body execution.

Since the backend layer (:mod:`repro.parallel.backends`) landed, the
runtime also routes *pure* phases through a real thread or process pool
when constructed with ``backend='threaded'`` / ``backend='process'``.
The ledger is still computed from the same per-chunk costs, so the
simulated makespan — the paper-scaling instrument — is bit-identical
across backends; only wall-clock time changes.  Bodies opt in with
``parallel_for(..., pure=True)``: a pure body reads shared inputs and
returns fresh values.  Impure phases (frontier algorithms mutating
shared arrays through :mod:`repro.parallel.atomics`) always run on the
simulated serial loop regardless of the configured backend, which is
what makes backend choice invisible to results.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Sequence

import numpy as np

from .backends import ExecutionBackend, make_backend
from .cost import CostModel, RunLedger
from .partition import blocked_range, cyclic_range
from .scheduler import make_scheduler

__all__ = ["ParallelRuntime", "TaskResult"]


class TaskResult:
    """Explicit ``(value, work)`` pair a chunk body may return.

    When a body returns a bare value, the runtime charges the chunk's
    element count as its work — the right default for per-element kernels.
    Returning ``TaskResult(value, work)`` lets irregular kernels (frontier
    expansion, hash counting) charge the incidences they actually touched.
    """

    __slots__ = ("value", "work")

    def __init__(self, value: Any, work: float) -> None:
        self.value = value
        self.work = float(work)


class ParallelRuntime:
    """Simulated work-stealing runtime with pluggable partitioning.

    Parameters
    ----------
    num_threads:
        Simulated thread count (the x-axis of Figs. 7–8).
    scheduler:
        ``'work_stealing'`` (default, models tbb::auto_partitioner +
        stealing) or ``'static'``.
    partitioner:
        Default range adaptor for :meth:`partition`: ``'blocked'`` or
        ``'cyclic'``.
    grain:
        Chunks per thread produced by :meth:`partition` (finer grain =
        better stealing, more per-task overhead — a real TBB trade-off the
        cost model reproduces).
    cost_model:
        See :class:`repro.parallel.cost.CostModel`.
    execution_order:
        ``'submission'`` (default) or ``'shuffled'`` — run chunk bodies in
        a seeded random order to exercise schedule-independence.
    seed:
        RNG seed for ``'shuffled'`` execution.
    trace:
        Record per-task (thread, start, end) schedule events, exportable
        with :func:`repro.parallel.trace.export_chrome_trace`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Every phase then also emits
        a **wall-clock** span named after the phase, annotated with the
        simulated makespan, task/steal counts, and total work — so one
        merged Perfetto timeline (see
        :func:`repro.obs.profile.merged_chrome_trace`) shows Python-level
        time next to the simulated schedule.  Defaults to the no-op
        tracer (near-zero overhead).
    backend:
        Execution backend for pure phases: ``'simulated'`` (default),
        ``'threaded'``, ``'process'``, or an
        :class:`~repro.parallel.backends.ExecutionBackend` instance
        (shared pools can be reused across runtimes — the owner closes
        them).  The ``REPRO_BACKEND`` environment variable overrides the
        default when no explicit backend is passed.
    workers:
        Real pool size for ``'threaded'``/``'process'`` (defaults to a
        bounded ``os.cpu_count()``; independent of the *simulated*
        ``num_threads``, which stays the cost-model x-axis).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; pure phases then
        bump ``runtime.backend.tasks`` / ``runtime.backend.real_ms``
        counters labelled by backend.
    """

    def __init__(
        self,
        num_threads: int = 1,
        scheduler: str = "work_stealing",
        partitioner: str = "blocked",
        grain: int = 4,
        cost_model: CostModel | None = None,
        execution_order: str = "submission",
        seed: int = 0,
        trace: bool = False,
        tracer=None,
        backend: "str | ExecutionBackend | None" = None,
        workers: int | None = None,
        metrics=None,
    ) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if partitioner not in ("blocked", "cyclic"):
            raise ValueError("partitioner must be 'blocked' or 'cyclic'")
        if execution_order not in ("submission", "shuffled"):
            raise ValueError(
                "execution_order must be 'submission' or 'shuffled'"
            )
        if grain <= 0:
            raise ValueError("grain must be positive")
        self.num_threads = int(num_threads)
        self.scheduler = make_scheduler(scheduler)
        self.partitioner = partitioner
        self.grain = int(grain)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.execution_order = execution_order
        self.trace = bool(trace)
        from repro.obs.tracer import as_tracer

        self.tracer = as_tracer(tracer)
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND") or "simulated"
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend, workers)
        self.metrics = metrics
        self._rng = np.random.default_rng(seed)
        self.ledger = RunLedger(num_threads=self.num_threads)
        # dynamic race checking (repro.check.races): off by default — the
        # per-chunk cost of a disabled monitor is a single `is None` test
        self.monitor = None
        if os.environ.get("REPRO_CHECK"):
            self.checked()

    def checked(self, monitor=None) -> "ParallelRuntime":
        """Attach a race detector (``repro check``'s dynamic pass).

        Subsequent phases record per-task access sets of every
        :class:`~repro.check.races.CheckedArray` touched inside bodies
        and flag cross-task overlaps.  Returns ``self`` for chaining:
        ``runtime = ParallelRuntime(4).checked()``.
        """
        if monitor is None:
            from repro.check.races import RaceDetector

            monitor = RaceDetector()
        self.monitor = monitor
        install = getattr(monitor, "install_queue_hook", None)
        if install is not None:
            install()
        return self

    # -- bookkeeping -------------------------------------------------------------
    def new_run(self) -> RunLedger:
        """Start a fresh ledger (one algorithm invocation = one run)."""
        self.ledger = RunLedger(num_threads=self.num_threads)
        return self.ledger

    @property
    def makespan(self) -> float:
        return self.ledger.makespan

    # -- partitioning -----------------------------------------------------------------
    def partition(
        self, ids: int | Sequence[int] | np.ndarray
    ) -> list[np.ndarray]:
        """Chunk an ID range with the runtime's default adaptor and grain."""
        n_chunks = self.num_threads * self.grain
        if self.partitioner == "cyclic":
            return cyclic_range(ids, n_chunks)
        return blocked_range(ids, n_chunks)

    # -- execution -----------------------------------------------------------------------
    def share(self, *objs):
        """Backend-appropriate transport for large read-only inputs.

        ``with runtime.share(edges, nodes) as (e, n): ...`` yields the
        objects unchanged on in-memory backends and as zero-copy
        :mod:`repro.parallel.shared` handles on the process backend
        (released when the block exits).  Kernels reopen them with
        :func:`repro.parallel.shared.open_handles`, which is a no-op for
        plain objects — one code path for all three backends.
        """
        return self.backend.share(*objs)

    def parallel_for(
        self,
        chunks: Sequence[Any],
        body: Callable[[Any], Any],
        phase: str = "parallel_for",
        pure: bool = False,
    ) -> list[Any]:
        """Run ``body`` over every chunk; simulate the schedule; return values.

        Values are returned in **submission order** regardless of execution
        order, so callers can zip them with their chunks.

        ``pure=True`` declares that ``body`` only reads shared state and
        returns fresh values, making it safe to run on a real thread or
        process pool; only then does a ``'threaded'``/``'process'``
        backend actually execute chunks concurrently.  Impure bodies
        (anything mutating shared arrays) always use the serial loop.
        """
        mon = self.monitor
        use_backend = (
            pure and self.backend.concurrent and len(chunks) > 1
        )
        with self.tracer.span("runtime." + phase) as span:
            if mon is not None:
                mon.begin_phase(phase)
            values: list[Any] = [None] * len(chunks)
            costs = np.zeros(len(chunks), dtype=np.float64)
            started = time.perf_counter()
            if use_backend:
                # per-task monitor brackets run on the worker threads via
                # the backend's wrapper; a process pool can't observe the
                # parent's CheckedArrays, so no brackets cross that wall
                task_monitor = mon if self.backend.in_process else None
                outs = self.backend.map(body, chunks, monitor=task_monitor)
            else:
                order = np.arange(len(chunks))
                if self.execution_order == "shuffled" and len(chunks) > 1:
                    order = self._rng.permutation(len(chunks))
                outs = [None] * len(chunks)
                for i in order:
                    if mon is not None:
                        mon.begin_task(int(i))
                    outs[i] = body(chunks[i])
                    if mon is not None:
                        mon.end_task()
            real_ms = (time.perf_counter() - started) * 1e3
            for i, out in enumerate(outs):
                if isinstance(out, TaskResult):
                    values[i] = out.value
                    costs[i] = out.work
                else:
                    values[i] = out
                    costs[i] = _default_work(chunks[i])
            if mon is not None:
                mon.end_phase(phase)
            ledger = self.scheduler.schedule(
                costs,
                self.num_threads,
                self.cost_model,
                phase_name=phase,
                record_events=self.trace,
            )
            self.ledger.add(ledger)
            span.set(
                simulated_makespan=ledger.makespan,
                simulated_work=ledger.total_work,
                tasks=ledger.num_tasks,
                steals=ledger.num_steals,
                threads=self.num_threads,
                backend=self.backend.name if use_backend else "simulated",
                real_ms=real_ms,
            )
            if self.metrics is not None:
                which = self.backend.name if use_backend else "simulated"
                self.metrics.counter(
                    "runtime.backend.tasks", backend=which
                ).inc(len(chunks))
                self.metrics.counter(
                    "runtime.backend.real_ms", backend=which
                ).inc(real_ms)
        return values

    def parallel_reduce(
        self,
        chunks: Sequence[Any],
        body: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        initial: Any,
        phase: str = "parallel_reduce",
    ) -> Any:
        """``parallel_for`` + deterministic left fold of the chunk values."""
        acc = initial
        for value in self.parallel_for(chunks, body, phase=phase):
            acc = combine(acc, value)
        return acc

    def close(self) -> None:
        """Shut down the backend's pools, if this runtime created them.

        A backend *instance* passed in by the caller (e.g. a pool shared
        across runtimes by the service engine) is left running — its
        owner closes it.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def serial_phase(self, work: float, phase: str = "serial") -> None:
        """Charge purely serial work (queue merge, prefix sums) to the run."""
        with self.tracer.span("runtime." + phase) as span:
            ledger = self.scheduler.schedule(
                [], self.num_threads, self.cost_model, phase_name=phase
            )
            ledger.serial_time += float(work)
            self.ledger.add(ledger)
            span.set(simulated_makespan=ledger.makespan, serial=True)


def _default_work(chunk: Any) -> float:
    """Element count of a chunk (ID array or (ids, neighborhoods) tuple)."""
    if isinstance(chunk, tuple):
        chunk = chunk[0]
    if isinstance(chunk, np.ndarray):
        return float(chunk.shape[0])
    try:
        return float(len(chunk))
    except TypeError:
        return 1.0

"""Deterministic emulation of the atomic idioms parallel algorithms use.

The C++ kernels rely on ``compare_exchange`` / ``fetch_min`` style atomics
(label propagation writes the minimum label; BFS claims a parent with CAS).
Executed sequentially, the same result is obtained by *idempotent
min-combining*: applying updates in any order converges to the same fixed
point.  These helpers make that explicit — and vectorized — so algorithm
code reads like its parallel original while staying schedule-independent
(tested by running chunks in shuffled orders).
"""

from __future__ import annotations

import numpy as np

__all__ = ["write_min", "write_max", "compare_and_swap", "fetch_or"]


def write_min(array: np.ndarray, idx: np.ndarray, values: np.ndarray) -> int:
    """``array[idx] = min(array[idx], values)`` with duplicate-safe semantics.

    Equivalent to a loop of atomic ``fetch_min``; duplicate indices in
    ``idx`` are combined (``np.minimum.at``).  Returns how many entries
    actually decreased (the "changed" count label-propagation loops test).
    """
    idx = np.asarray(idx)
    values = np.asarray(values)
    before = array[idx].copy()
    np.minimum.at(array, idx, values)
    return int(np.count_nonzero(array[idx] < before))


def write_max(array: np.ndarray, idx: np.ndarray, values: np.ndarray) -> int:
    """Dual of :func:`write_min` using atomic ``fetch_max`` semantics."""
    idx = np.asarray(idx)
    values = np.asarray(values)
    before = array[idx].copy()
    np.maximum.at(array, idx, values)
    return int(np.count_nonzero(array[idx] > before))


def compare_and_swap(
    array: np.ndarray, idx: np.ndarray, expected, desired: np.ndarray
) -> np.ndarray:
    """Vectorized CAS: where ``array[idx] == expected``, store ``desired``.

    For duplicate indices the *first* occurrence wins (matching the one
    successful CAS among racing threads); returns a boolean mask of which
    lanes won.  ``expected`` may be a scalar or an array.
    """
    idx = np.asarray(idx)
    desired = np.asarray(desired)
    # Keep only the first occurrence of each index: later lanes would see
    # the winner's value and fail their CAS.
    _, first_pos = np.unique(idx, return_index=True)
    is_first = np.zeros(idx.shape, dtype=bool)
    is_first[first_pos] = True
    won = is_first & (array[idx] == expected)
    array[idx[won]] = desired[won] if desired.ndim else desired
    return won


def fetch_or(array: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Atomic test-and-set on a boolean array; True where this call set it.

    Duplicate indices: only the first occurrence reports ``True`` —
    mirroring exactly one thread winning the bit.
    """
    idx = np.asarray(idx)
    _, first_pos = np.unique(idx, return_index=True)
    is_first = np.zeros(idx.shape, dtype=bool)
    is_first[first_pos] = True
    won = is_first & ~array[idx]
    array[idx[won]] = True
    return won

"""JSON-lines TCP serving — stdlib ``socketserver``, one thread per client.

Wire protocol (newline-delimited JSON, UTF-8):

* request line: one query object (see :mod:`repro.service.engine`), or
  ``{"batch": [query, ...]}`` for a batch;
* response line: the corresponding response object, or the array of
  responses for a batch.

Connections are persistent — clients may pipeline any number of request
lines.  Malformed JSON gets an ``{"ok": false, "error": {"code":
"bad_json", ...}}`` response rather than a dropped connection.  A batch
envelope may pin the protocol version (``{"batch": [...], "v": 1}``)
and/or select the execution backend for its dispatch (``{"batch": [...],
"backend": "threaded", "workers": 8}`` — see docs/PARALLEL.md); framing
and routing live in :mod:`repro.service.protocol`, shared with the
asyncio front door (:mod:`repro.service.aserver`).  The engine (and
therefore the store, the cache, and all counters) is shared across
client threads; passing ``port=0`` binds an ephemeral port, readable
back from ``address``.

Per-tenant admission quotas (``quotas=``, :mod:`repro.service.quota`)
shed requests from tenants past their token-bucket rate with a cached
structured ``quota_exceeded`` response before any engine work happens,
through the same counter-tagged :class:`~repro.service.quota.ShedLedger`
path the asyncio front door uses (``service_*`` prefix here,
``service_async_*`` there).

:meth:`AnalyticsServer.stop` drains: it stops accepting, then waits
(bounded) for requests already executing in handler threads to finish
writing their responses before releasing the socket — a client never
sees a connection die mid-response because of an orderly shutdown.

Clients live in :mod:`repro.service.session`
(:class:`~repro.service.session.SocketSession` /
:class:`~repro.service.session.InProcessSession`); the deprecated
``ServiceClient`` / ``InProcessClient`` names are re-exported here for
the deprecation window.
"""

from __future__ import annotations

import socketserver
import threading
import time

from .engine import QueryEngine
from .protocol import dispatch as _dispatch  # noqa: F401  (compat export)
from .protocol import dispatch_line
from .protocol import protocol_error as _protocol_error  # noqa: F401
from .quota import ShedLedger, TenantQuotas, extract_tenant
from .session import InProcessClient, ServiceClient  # noqa: F401

__all__ = ["AnalyticsServer", "InProcessClient", "ServiceClient"]


class _QueryHandler(socketserver.StreamRequestHandler):
    """One client connection: drain request lines until EOF."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server = self.server
        for raw in self.rfile:
            raw = raw.strip()
            if not raw:
                continue
            shed = server._quota_shed(raw)  # type: ignore[attr-defined]
            if shed is not None:
                # quota'd tenant: answer from the cached line without
                # touching the engine or the in-flight accounting
                self.wfile.write(shed + b"\n")
                self.wfile.flush()
                continue
            server._begin_request()  # type: ignore[attr-defined]
            try:
                line = dispatch_line(
                    server.engine, raw  # type: ignore[attr-defined]
                )
                self.wfile.write(line + b"\n")
                self.wfile.flush()
            finally:
                server._end_request()  # type: ignore[attr-defined]


class AnalyticsServer(socketserver.ThreadingTCPServer):
    """Threaded hypergraph-analytics server over one shared engine."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: QueryEngine | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: "TenantQuotas | dict | None" = None,
    ) -> None:
        self.engine = engine if engine is not None else QueryEngine()
        self._thread: threading.Thread | None = None
        self._inflight = 0
        self._inflight_lock = threading.Condition()
        self.quotas = TenantQuotas.coerce(quotas)
        self._ledger = ShedLedger(self.engine.obs_metrics, "service")
        if self.quotas is not None:
            for tenant in self.quotas.tenants:
                self._ledger.quota_line(tenant)
        super().__init__((host, port), _QueryHandler)

    def _quota_shed(self, raw: bytes) -> bytes | None:
        """Cached ``quota_exceeded`` line if ``raw`` must shed, else None.

        The same counter-tagged path the async front door uses
        (:class:`~repro.service.quota.ShedLedger`), under the
        ``service_*`` prefix.
        """
        if self.quotas is None:
            return None
        tenant = extract_tenant(raw)
        if self.quotas.admit(tenant):
            self._ledger.admitted(tenant)
            return None
        self._ledger.shed("quota", tenant)
        return self._ledger.quota_line(tenant)

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "AnalyticsServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def wait(self) -> None:
        """Block until the server stops (foreground serving)."""
        thread = self._thread
        if thread is not None:
            thread.join()

    # -- in-flight accounting (handler threads) ------------------------------
    def _begin_request(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self._inflight_lock.notify_all()

    def inflight(self) -> int:
        """Requests currently executing in handler threads."""
        with self._inflight_lock:
            return self._inflight

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._inflight_lock:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_lock.wait(remaining)
            return True

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, release the socket.

        Handler threads that are mid-request get up to ``drain_timeout``
        seconds to finish writing their responses before the listening
        socket is closed (they are daemon threads, so a straggler past
        the deadline cannot hang interpreter exit).  Idempotent.
        """
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self.wait_idle(drain_timeout)
        self.server_close()

    def __enter__(self) -> "AnalyticsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

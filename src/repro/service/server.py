"""JSON-lines TCP serving — stdlib ``socketserver``, one thread per client.

Wire protocol (newline-delimited JSON, UTF-8):

* request line: one query object (see :mod:`repro.service.engine`), or
  ``{"batch": [query, ...]}`` for a batch;
* response line: the corresponding response object, or the array of
  responses for a batch.

Connections are persistent — clients may pipeline any number of request
lines.  Malformed JSON gets an ``{"ok": false, "error": {"code":
"bad_json", ...}}`` response rather than a dropped connection.  A batch
envelope may pin the protocol version (``{"batch": [...], "v": 1}``)
and/or select the execution backend for its dispatch (``{"batch": [...],
"backend": "threaded", "workers": 8}`` — see docs/PARALLEL.md);
see ``docs/API.md`` for the full v1 schema.  The engine (and therefore the store, the
cache, and all counters) is shared across client threads; passing
``port=0`` binds an ephemeral port, readable back from ``address``.

:class:`ServiceClient` is the matching socket client;
:class:`InProcessClient` offers the same surface directly over an
engine, so library code and tests can script a session without sockets.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from .engine import PROTOCOL_VERSION, SUPPORTED_VERSIONS, QueryEngine

__all__ = ["AnalyticsServer", "InProcessClient", "ServiceClient"]


def _protocol_error(code: str, message: str) -> dict:
    return {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
        # pre-v1 free-form string; kept for one release
        "error_str": message,
    }


def _dispatch(engine: QueryEngine, payload: object) -> object:
    """Route one decoded request line (single query or batch envelope)."""
    if isinstance(payload, dict) and "batch" in payload:
        v = payload.get("v", payload.get("version"))
        if v is not None and v not in SUPPORTED_VERSIONS:
            return _protocol_error(
                "unsupported_version",
                f"unsupported protocol version {v!r}; "
                f"this server speaks {sorted(SUPPORTED_VERSIONS)}",
            )
        backend = payload.get("backend")
        if backend is not None and backend not in ("simulated", "threaded", "process"):
            return _protocol_error(
                "invalid_argument",
                f"unknown backend {backend!r}; choose simulated, "
                f"threaded, or process",
            )
        workers = payload.get("workers")
        return engine.execute_batch(
            payload["batch"],
            backend=backend,
            workers=None if workers is None else int(workers),
        )
    return engine.execute(payload)


class _QueryHandler(socketserver.StreamRequestHandler):
    """One client connection: drain request lines until EOF."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        for raw in self.rfile:
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                response: object = _protocol_error(
                    "bad_json", f"bad request line: {exc}"
                )
            else:
                engine = self.server.engine  # type: ignore[attr-defined]
                response = _dispatch(engine, payload)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()


class AnalyticsServer(socketserver.ThreadingTCPServer):
    """Threaded hypergraph-analytics server over one shared engine."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: QueryEngine | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine if engine is not None else QueryEngine()
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _QueryHandler)

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "AnalyticsServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "AnalyticsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ServiceClient:
    """Socket client speaking the JSON-lines protocol (pipelinable)."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    # -- protocol ------------------------------------------------------------
    def request(self, payload: dict) -> object:
        """Send one request line, block for its response line."""
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    # -- conveniences ---------------------------------------------------------
    def query(self, op: str, **fields) -> dict:
        """``client.query("s_distance", dataset="lj", s=2, src=0, dst=9)``"""
        return self.request({"op": op, **fields})

    def batch(
        self,
        queries: list[dict],
        backend: str | None = None,
        workers: int | None = None,
    ) -> list[dict]:
        envelope: dict = {"batch": list(queries)}
        if backend is not None:
            envelope["backend"] = backend
        if workers is not None:
            envelope["workers"] = int(workers)
        out = self.request(envelope)
        if not isinstance(out, list):
            raise ConnectionError(f"expected batch response, got {out!r}")
        return out

    def metrics(self) -> dict:
        return self.query("metrics")

    def prometheus(self) -> str:
        """The server's registry in Prometheus text exposition format."""
        resp = self.query("prometheus")
        return resp.get("result", "")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessClient:
    """The :class:`ServiceClient` surface, minus the socket.

    Wraps an engine directly — for embedding a serving session inside a
    notebook/script (the HyperNetX-style long-lived analysis session)
    and for tests that don't need wire transport.
    """

    def __init__(self, engine: QueryEngine | None = None) -> None:
        self.engine = engine if engine is not None else QueryEngine()

    def request(self, payload: dict) -> object:
        return _dispatch(self.engine, payload)

    def query(self, op: str, **fields) -> dict:
        return self.engine.execute({"op": op, **fields})

    def batch(
        self,
        queries: list[dict],
        backend: str | None = None,
        workers: int | None = None,
    ) -> list[dict]:
        return self.engine.execute_batch(
            list(queries), backend=backend, workers=workers
        )

    def metrics(self) -> dict:
        return self.query("metrics")

    def prometheus(self) -> str:
        """The engine's registry in Prometheus text exposition format."""
        return self.engine.prometheus()

    def close(self) -> None:  # symmetry with ServiceClient
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

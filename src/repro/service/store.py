"""Session-scoped registry of named, resident hypergraphs.

A serving session holds its working set of hypergraphs in memory so that
every query against ``"livejournal"`` hits the same
:class:`~repro.core.hypergraph.NWHypergraph` instance — with its lazily
built representations and memoized s-line graphs intact — instead of
re-reading and re-indexing a file per query (what each CLI invocation
used to do).

Sources accepted by :meth:`HypergraphStore.register`:

* an ``NWHypergraph`` (adopted as-is),
* a ``DynamicHypergraph`` (registered as a mutable dataset),
* a ``BiEdgeList`` (wrapped),
* a path string to any format :func:`repro.io.loader.read_any` sniffs,
* a bare Table I stand-in name (``"rand1"``, ``"com-orkut"``, ...),
* a **store directory** (:mod:`repro.store`) — opened via
  :func:`~repro.store.recover.open_store`: the dataset is registered
  *durable-dynamic* (every update batch is WAL-logged before it is
  acknowledged) over zero-copy mmap slabs, and the handle is tracked so
  :meth:`close` releases its file resources.

Datasets come in two flavors.  *Static* entries are frozen
``NWHypergraph`` instances — the original serving model.  *Dynamic*
entries wrap a :class:`~repro.dynamic.hypergraph.DynamicHypergraph`;
:meth:`get` transparently returns its current frozen snapshot (memoized
per version), so every read-side op works unchanged, while the service's
``update`` op reaches the mutable object through :meth:`get_dynamic` —
which also *promotes* a static dataset to dynamic in place on first
update.  :meth:`versioned_name` exposes the ``name@vN`` key the s-line
graph cache uses so entries from different versions can never be
confused.

All operations are thread-safe (the TCP server handles each client on
its own thread).
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING

from repro.core.hypergraph import NWHypergraph
from repro.structures.edgelist import BiEdgeList

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dynamic.hypergraph import DynamicHypergraph

__all__ = ["HypergraphStore"]


class HypergraphStore:
    """Named resident hypergraphs (static and dynamic) for one session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, NWHypergraph] = {}
        self._dynamic: dict[str, "DynamicHypergraph"] = {}
        self._stores: dict[str, object] = {}  # name -> StoreHandle

    # -- registration -------------------------------------------------------
    def register(
        self,
        name: str,
        source: object,
        replace: bool = False,
        dynamic: bool = False,
        tracer: object = None,
        metrics: object = None,
    ) -> NWHypergraph:
        """Load (if needed) and pin a hypergraph under ``name``.

        ``dynamic=True`` (or passing a ``DynamicHypergraph`` source)
        registers a mutable dataset; a store-directory source is always
        dynamic (durably so).  Re-registering an existing name raises
        unless ``replace=True`` — silently swapping the dataset under
        live queries is almost always a client bug.
        """
        from repro.dynamic.hypergraph import DynamicHypergraph

        if not name:
            raise ValueError("dataset name must be non-empty")
        handle = None
        if isinstance(source, DynamicHypergraph):
            dyn: DynamicHypergraph | None = source
            hg = source.snapshot()
        elif self._is_store_dir(source):
            from repro.store import open_store

            handle = open_store(source, tracer=tracer, metrics=metrics)
            dyn = handle.dynamic
            hg = dyn.snapshot()
        elif dynamic:
            dyn = DynamicHypergraph(
                self._resolve(source), tracer=tracer, metrics=metrics
            )
            hg = dyn.snapshot()
        else:
            dyn = None
            hg = self._resolve(source)
        with self._lock:
            if not replace and name in self._entries:
                if handle is not None:
                    handle.close()
                raise ValueError(
                    f"dataset {name!r} already registered "
                    "(pass replace=True to swap it)"
                )
            self._entries[name] = hg
            if dyn is not None:
                self._dynamic[name] = dyn
            else:
                self._dynamic.pop(name, None)
            old = self._stores.pop(name, None)
            if handle is not None:
                self._stores[name] = handle
        if old is not None:
            old.close()  # type: ignore[attr-defined]
        return hg

    @staticmethod
    def _is_store_dir(source: object) -> bool:
        if not isinstance(source, (str, os.PathLike)):
            return False
        from repro.store.manifest import is_store_dir

        return is_store_dir(source)

    @staticmethod
    def _resolve(source: NWHypergraph | BiEdgeList | str) -> NWHypergraph:
        if isinstance(source, NWHypergraph):
            return source
        if isinstance(source, BiEdgeList):
            return NWHypergraph(
                source.part0,
                source.part1,
                source.weights,
                num_edges=source.num_vertices(0),
                num_nodes=source.num_vertices(1),
            )
        from repro.io.loader import load_hypergraph

        return load_hypergraph(source)

    def unregister(self, name: str) -> None:
        """Drop a resident hypergraph (KeyError if absent)."""
        with self._lock:
            del self._entries[name]
            self._dynamic.pop(name, None)
            handle = self._stores.pop(name, None)
        if handle is not None:
            handle.close()  # type: ignore[attr-defined]

    # -- lookup --------------------------------------------------------------
    def get(self, name: str) -> NWHypergraph:
        """The current frozen view of a dataset (snapshot, for dynamic)."""
        with self._lock:
            dyn = self._dynamic.get(name)
            if dyn is None:
                try:
                    return self._entries[name]
                except KeyError:
                    raise KeyError(
                        f"unknown dataset {name!r}; "
                        f"registered: {sorted(self._entries)}"
                    ) from None
        # snapshot() takes the DynamicHypergraph's own lock; memoized per
        # version, so reads between updates are one dict hit
        return dyn.snapshot()

    def get_dynamic(
        self, name: str, tracer: object = None, metrics: object = None
    ) -> "DynamicHypergraph":
        """The mutable handle of a dataset, promoting static entries.

        A dataset registered static is wrapped into a
        :class:`~repro.dynamic.hypergraph.DynamicHypergraph` in place on
        first access (its frozen instance becomes the version-0 base) —
        so any resident dataset accepts updates without re-registration.
        ``tracer``/``metrics`` instrument a promotion's new wrapper.
        """
        from repro.dynamic.hypergraph import DynamicHypergraph

        with self._lock:
            dyn = self._dynamic.get(name)
            if dyn is not None:
                return dyn
            try:
                hg = self._entries[name]
            except KeyError:
                raise KeyError(
                    f"unknown dataset {name!r}; "
                    f"registered: {sorted(self._entries)}"
                ) from None
            dyn = DynamicHypergraph(hg, tracer=tracer, metrics=metrics)
            self._dynamic[name] = dyn
            return dyn

    def is_dynamic(self, name: str) -> bool:
        with self._lock:
            return name in self._dynamic

    def version(self, name: str) -> int:
        """Current version of a dataset (0 for static / never-updated)."""
        with self._lock:
            if name not in self._entries:
                raise KeyError(
                    f"unknown dataset {name!r}; "
                    f"registered: {sorted(self._entries)}"
                )
            dyn = self._dynamic.get(name)
        return 0 if dyn is None else dyn.version

    def versioned_name(self, name: str) -> str:
        """The version-aware cache key for a dataset: ``name@vN``.

        Never-updated datasets (static, or dynamic still at version 0)
        key under the bare name, so the cache behaves exactly as it
        always has for static working sets — and entries cached before a
        dataset's promotion to dynamic stay reachable until its first
        update migrates them.
        """
        with self._lock:
            dyn = self._dynamic.get(name)
            if name not in self._entries:
                raise KeyError(
                    f"unknown dataset {name!r}; "
                    f"registered: {sorted(self._entries)}"
                )
        if dyn is None:
            return name
        version = dyn.version
        return name if version == 0 else f"{name}@v{version}"

    def store_handle(self, name: str) -> object:
        """The :class:`~repro.store.recover.StoreHandle` backing a dataset
        (``None`` for purely in-memory datasets)."""
        with self._lock:
            return self._stores.get(name)

    def close(self) -> None:
        """Release every durable store handle (WAL files, slab mappings).

        Registered datasets stay queryable from memory; only the disk
        resources are dropped, so this is the shutdown path — the server
        calls it once serving ends.
        """
        with self._lock:
            handles = list(self._stores.values())
            self._stores.clear()
        for handle in handles:
            handle.close()  # type: ignore[attr-defined]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- introspection -------------------------------------------------------
    def stats(self, name: str) -> dict:
        """Size card for one resident dataset (JSON-safe)."""
        hg = self.get(name)
        degrees = hg.degrees()
        sizes = hg.edge_sizes()
        out = {
            "dataset": name,
            "num_nodes": hg.number_of_nodes(),
            "num_edges": hg.number_of_edges(),
            "num_incidences": len(hg._el),
            "incidence_bytes": hg._el.nbytes(),
            "avg_node_degree": float(degrees.mean()) if degrees.size else 0.0,
            "avg_edge_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_node_degree": int(degrees.max()) if degrees.size else 0,
            "max_edge_size": int(sizes.max()) if sizes.size else 0,
        }
        with self._lock:
            dyn = self._dynamic.get(name)
            handle = self._stores.get(name)
        if dyn is not None:
            out["dynamic"] = True
            out["version"] = dyn.version
            out["pending_ops"] = dyn.pending_ops()
        if handle is not None:
            out["durable"] = True
            out["store"] = handle.stats()  # type: ignore[attr-defined]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HypergraphStore({self.names()!r})"

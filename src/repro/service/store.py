"""Session-scoped registry of named, resident hypergraphs.

A serving session holds its working set of hypergraphs in memory so that
every query against ``"livejournal"`` hits the same
:class:`~repro.core.hypergraph.NWHypergraph` instance — with its lazily
built representations and memoized s-line graphs intact — instead of
re-reading and re-indexing a file per query (what each CLI invocation
used to do).

Sources accepted by :meth:`HypergraphStore.register`:

* an ``NWHypergraph`` (adopted as-is),
* a ``BiEdgeList`` (wrapped),
* a path string to any format :func:`repro.io.loader.read_any` sniffs,
* a bare Table I stand-in name (``"rand1"``, ``"com-orkut"``, ...).

All operations are thread-safe (the TCP server handles each client on
its own thread).
"""

from __future__ import annotations

import threading

from repro.core.hypergraph import NWHypergraph
from repro.structures.edgelist import BiEdgeList

__all__ = ["HypergraphStore"]


class HypergraphStore:
    """Named resident ``NWHypergraph`` instances for one serving session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, NWHypergraph] = {}

    # -- registration -------------------------------------------------------
    def register(
        self,
        name: str,
        source: NWHypergraph | BiEdgeList | str,
        replace: bool = False,
    ) -> NWHypergraph:
        """Load (if needed) and pin a hypergraph under ``name``.

        Re-registering an existing name raises unless ``replace=True`` —
        silently swapping the dataset under live queries is almost always
        a client bug.
        """
        if not name:
            raise ValueError("dataset name must be non-empty")
        hg = self._resolve(source)
        with self._lock:
            if not replace and name in self._entries:
                raise ValueError(
                    f"dataset {name!r} already registered "
                    "(pass replace=True to swap it)"
                )
            self._entries[name] = hg
        return hg

    @staticmethod
    def _resolve(source: NWHypergraph | BiEdgeList | str) -> NWHypergraph:
        if isinstance(source, NWHypergraph):
            return source
        if isinstance(source, BiEdgeList):
            return NWHypergraph(
                source.part0,
                source.part1,
                source.weights,
                num_edges=source.num_vertices(0),
                num_nodes=source.num_vertices(1),
            )
        from repro.io.loader import load_hypergraph

        return load_hypergraph(source)

    def unregister(self, name: str) -> None:
        """Drop a resident hypergraph (KeyError if absent)."""
        with self._lock:
            del self._entries[name]

    # -- lookup --------------------------------------------------------------
    def get(self, name: str) -> NWHypergraph:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(
                    f"unknown dataset {name!r}; registered: {sorted(self._entries)}"
                ) from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- introspection -------------------------------------------------------
    def stats(self, name: str) -> dict:
        """Size card for one resident dataset (JSON-safe)."""
        hg = self.get(name)
        degrees = hg.degrees()
        sizes = hg.edge_sizes()
        return {
            "dataset": name,
            "num_nodes": hg.number_of_nodes(),
            "num_edges": hg.number_of_edges(),
            "num_incidences": len(hg._el),
            "incidence_bytes": hg._el.nbytes(),
            "avg_node_degree": float(degrees.mean()) if degrees.size else 0.0,
            "avg_edge_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_node_degree": int(degrees.max()) if degrees.size else 0,
            "max_edge_size": int(sizes.max()) if sizes.size else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HypergraphStore({self.names()!r})"

"""The client surface: one ``Session`` API over every transport.

PR 1 grew two parallel clients — ``ServiceClient`` (socket) and
``InProcessClient`` (directly over an engine) — with duplicated
conveniences and callers fishing error codes out of response dicts.
This module collapses them into one surface:

* :class:`Session` — the shared base: ``request`` / ``query`` /
  ``batch`` / ``update`` / ``metrics`` / ``prometheus``, context-manager
  close, and **typed errors**: in strict mode (the default) a failed
  response raises :class:`ServiceError` carrying the structured
  ``error.code`` instead of returning ``{"ok": false, ...}`` for the
  caller to inspect;
* :class:`SocketSession` — the JSON-lines TCP transport (works against
  both the threaded and the asyncio server; connections are persistent
  and pipelinable);
* :class:`InProcessSession` — no socket, straight onto a
  :class:`~repro.service.engine.QueryEngine` (notebooks, tests).

A session may pin a protocol ``version`` for its lifetime — every query
then carries ``"version": N`` and batch envelopes ``"v": N`` — which is
how a v1 client talks to a v2 server (and how the compatibility tests
impersonate one).

The old names remain importable as deprecated aliases
(:class:`ServiceClient`, :class:`InProcessClient`): thin subclasses
pinned to the legacy non-strict behavior that warn on construction and
will be removed after one release.
"""

from __future__ import annotations

import json
import socket
import warnings

from .engine import QueryEngine
from .protocol import dispatch

__all__ = [
    "InProcessClient",
    "InProcessSession",
    "ServiceClient",
    "ServiceError",
    "Session",
    "SocketSession",
]


class ServiceError(RuntimeError):
    """A failed service response, raised by strict sessions.

    ``code`` is the machine-readable ``error.code`` from the wire
    (``unknown_op``, ``unknown_dataset``, ``invalid_argument``,
    ``overloaded``, ...); ``response`` is the full response dict for
    callers that need the rest of the envelope.
    """

    def __init__(
        self, code: str, message: str, response: dict | None = None
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.response = response if response is not None else {}

    @classmethod
    def from_response(cls, response: dict) -> "ServiceError":
        err = response.get("error") or {}
        return cls(
            str(err.get("code", "error")),
            str(err.get("message", "service request failed")),
            response,
        )


class Session:
    """Shared client surface; subclasses provide :meth:`request`.

    Parameters
    ----------
    strict:
        When true (default), :meth:`query` raises :class:`ServiceError`
        on ``ok: false`` responses instead of returning them.
        :meth:`batch` responses are returned per-item either way —
        partial failure inside a batch is data, not an exception.
    version:
        Optional protocol pin attached to every query (``"version"``)
        and batch envelope (``"v"``) this session sends.
    """

    def __init__(
        self, strict: bool = True, version: "int | float | None" = None
    ) -> None:
        self.strict = bool(strict)
        self.version = version

    # -- transport (subclass responsibility) ---------------------------------
    def request(self, payload: dict) -> object:
        """Send one raw request object, return the raw response."""
        raise NotImplementedError

    # -- typed surface -------------------------------------------------------
    def _checked(self, response: object) -> object:
        if (
            self.strict
            and isinstance(response, dict)
            and response.get("ok") is False
        ):
            raise ServiceError.from_response(response)
        return response

    def query(self, op: str, **fields: object) -> dict:
        """``session.query("s_distance", dataset="lj", s=2, src=0, dst=9)``"""
        payload = {"op": op, **fields}
        if self.version is not None and "version" not in payload:
            payload["version"] = self.version
        return self._checked(self.request(payload))  # type: ignore[return-value]

    def batch(
        self,
        queries: list[dict],
        backend: str | None = None,
        workers: int | None = None,
    ) -> list[dict]:
        """Run a batch; responses come back in input order.

        Envelope-level failures (bad version, unknown backend, an
        overloaded front door) raise :class:`ServiceError` when strict;
        per-item failures stay in the returned list.
        """
        envelope: dict = {"batch": list(queries)}
        if self.version is not None:
            envelope["v"] = self.version
        if backend is not None:
            envelope["backend"] = backend
        if workers is not None:
            envelope["workers"] = int(workers)
        out = self.request(envelope)
        if not isinstance(out, list):
            if (
                self.strict
                and isinstance(out, dict)
                and out.get("ok") is False
            ):
                raise ServiceError.from_response(out)
            raise ConnectionError(f"expected batch response, got {out!r}")
        return out

    def update(
        self, dataset: str, ops: list[dict], compact: bool = False
    ) -> dict:
        """Apply a mutation batch to a resident dynamic dataset."""
        return self.query(
            "update", dataset=dataset, ops=list(ops), compact=bool(compact)
        )

    def metrics(self) -> dict:
        return self.query("metrics")

    def prometheus(self) -> str:
        """The service registry in Prometheus text exposition format."""
        resp = self.query("prometheus")
        return resp.get("result", "") if isinstance(resp, dict) else ""

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SocketSession(Session):
    """JSON-lines TCP transport; persistent, pipelinable connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        strict: bool = True,
        version: "int | float | None" = None,
    ) -> None:
        super().__init__(strict=strict, version=version)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def request(self, payload: dict) -> object:
        """Send one request line, block for its response line."""
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def send(self, payload: dict) -> None:
        """Pipeline one request line without waiting for its response."""
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def recv(self) -> object:
        """Read the next response line of a pipelined exchange."""
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return self._checked(json.loads(line.decode("utf-8")))

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()


class InProcessSession(Session):
    """The :class:`Session` surface directly over an engine — no socket.

    For embedding a serving session inside a notebook/script (the
    HyperNetX-style long-lived analysis session) and for tests that need
    no wire transport.  An engine constructed *by* the session is closed
    with it; an engine passed in stays the caller's to close.
    """

    def __init__(
        self,
        engine: QueryEngine | None = None,
        strict: bool = True,
        version: "int | float | None" = None,
    ) -> None:
        super().__init__(strict=strict, version=version)
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else QueryEngine()

    def request(self, payload: dict) -> object:
        return dispatch(self.engine, payload)

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (repro.service.session)",
        DeprecationWarning,
        stacklevel=3,
    )


class ServiceClient(SocketSession):
    """Deprecated alias of :class:`SocketSession` (non-strict)."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        _deprecated("ServiceClient", "SocketSession")
        super().__init__(host, port, timeout=timeout, strict=False)


class InProcessClient(InProcessSession):
    """Deprecated alias of :class:`InProcessSession` (non-strict)."""

    def __init__(self, engine: QueryEngine | None = None) -> None:
        _deprecated("InProcessClient", "InProcessSession")
        super().__init__(engine, strict=False)
        # the legacy client never closed anything, even an engine it
        # created — preserve that exactly for the deprecation window
        self._owns_engine = False

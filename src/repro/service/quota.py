"""Per-tenant admission quotas and shared shed accounting.

PR 7's front door sheds *globally*: past ``max_pending`` accepted
requests every client gets ``overloaded``, so one tenant's burst blows
every other tenant's latency budget.  This module finishes that story
with classic token-bucket admission per tenant:

* :class:`TokenBucket` — the refill math: a bucket holds up to ``burst``
  tokens and refills at ``rate`` tokens/second; each admitted request
  takes one token, and an empty bucket means *shed now* (never queue —
  queuing a quota'd request is exactly the noisy-neighbor coupling the
  quota exists to prevent);
* :class:`TenantQuotas` — the per-tenant bucket map built from a plain
  spec dict (``{"bursty": {"rate": 50, "burst": 100}}``).  Requests
  carry their tenant in the envelope (``"tenant": "name"``); requests
  without a tenant, and tenants without a configured bucket, are
  admitted unless a ``"*"`` default spec says otherwise;
* :func:`extract_tenant` — pulls the tenant id out of a raw request
  line without a full JSON decode on the hot path;
* :class:`ShedLedger` — the one counter-tagged shed path shared by the
  asyncio front door and the threaded server: every shed increments
  ``{prefix}_shed_total{reason=...}`` (plus per-tenant
  ``{prefix}_tenant_shed_total{tenant=...}`` for quota sheds) and
  returns a **cached** pre-encoded response line, so shedding under
  overload costs no JSON encoding at all.

Both servers accept ``quotas=`` (a :class:`TenantQuotas` or its spec
dict); the load harness (:mod:`repro.bench.load`) drives the
noisy-neighbor scenario that proves the isolation.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Callable

__all__ = [
    "ShedLedger",
    "TenantQuotas",
    "TokenBucket",
    "extract_tenant",
]

#: default spec key: applies to any tenant without an explicit bucket
#: (anonymous requests — no ``tenant`` field — are never quota'd)
DEFAULT_TENANT = "*"

_TENANT_RE = re.compile(rb'"tenant"\s*:\s*"((?:[^"\\]|\\.)*)"')


class TokenBucket:
    """``rate`` tokens/second refill up to ``burst``; take-or-shed.

    Thread-safe (the threaded server admits from handler threads).  The
    clock is injectable for deterministic refill tests.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        rate = float(rate)
        if rate <= 0:
            raise ValueError("token-bucket rate must be > 0")
        self.rate = rate
        self.burst = rate if burst is None else float(burst)
        if self.burst < 1:
            raise ValueError("token-bucket burst must be >= 1")
        self._tokens = self.burst  # start full: a fresh tenant may burst
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:  # repro: noqa-R002 — every caller holds self._lock
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def spec(self) -> dict:
        return {"rate": self.rate, "burst": self.burst}


class TenantQuotas:
    """Token buckets per tenant id, built from a plain spec dict.

    ``spec`` maps tenant name to ``{"rate": r, "burst": b}`` (``burst``
    optional, default ``rate``).  The :data:`DEFAULT_TENANT` key ``"*"``
    configures a per-tenant bucket for tenants not named explicitly —
    each unnamed tenant gets its *own* bucket with that shape, created
    on first sight.  Requests carrying no tenant id are always admitted:
    quotas isolate named tenants from each other, they are not the
    global admission control (``max_pending`` is).
    """

    def __init__(
        self, spec: dict, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._default = spec.get(DEFAULT_TENANT)
        self._buckets: dict[str, TokenBucket] = {
            str(name): self._bucket(cfg)
            for name, cfg in spec.items()
            if name != DEFAULT_TENANT
        }

    def _bucket(self, cfg: "TokenBucket | dict") -> TokenBucket:
        if isinstance(cfg, TokenBucket):
            return cfg
        return TokenBucket(
            cfg["rate"], cfg.get("burst"), clock=self._clock
        )

    @classmethod
    def coerce(
        cls, quotas: "TenantQuotas | dict | None"
    ) -> "TenantQuotas | None":
        """Resolve a ``quotas=`` ctor parameter (spec dicts accepted)."""
        if quotas is None or isinstance(quotas, TenantQuotas):
            return quotas
        return cls(quotas)

    @property
    def tenants(self) -> list[str]:
        """Explicitly configured tenant names (sorted; no default key)."""
        with self._lock:
            return sorted(self._buckets)

    def bucket(self, tenant: str | None) -> TokenBucket | None:
        """The tenant's bucket (created from the default spec if any)."""
        if tenant is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None and self._default is not None:
                bucket = self._buckets[tenant] = self._bucket(self._default)
            return bucket

    def admit(self, tenant: str | None) -> bool:
        """Take one token from the tenant's bucket; unquota'd → admitted."""
        bucket = self.bucket(tenant)
        return True if bucket is None else bucket.try_take()

    def spec(self) -> dict:
        """JSON-safe round-trip of the configuration (for ``metrics``)."""
        with self._lock:
            out = {name: b.spec() for name, b in self._buckets.items()}
            if self._default is not None:
                cfg = self._default
                out[DEFAULT_TENANT] = (
                    cfg.spec() if isinstance(cfg, TokenBucket)
                    else {"rate": cfg["rate"],
                          "burst": cfg.get("burst", cfg["rate"])}
                )
        return out


def extract_tenant(raw: bytes) -> str | None:
    """The ``"tenant"`` id of a raw request line, or ``None``.

    A regex fast path covers the envelope the clients emit (the tenant
    value is a plain JSON string); lines that mention ``"tenant"`` in a
    shape the regex can't see (escapes, non-string values) fall back to
    a full decode.  Admission must never crash on garbage, so decode
    failures simply mean "no tenant".
    """
    if b'"tenant"' not in raw:
        return None
    m = _TENANT_RE.search(raw)
    if m is not None and b"\\" not in m.group(1):
        return m.group(1).decode("utf-8", errors="replace")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict):
        tenant = payload.get("tenant")
        if tenant is not None:
            return str(tenant)
    return None


class ShedLedger:
    """One shed path for both front doors: count, then answer from cache.

    ``prefix`` namespaces the counters per front door
    (``service_async`` for :class:`AsyncAnalyticsServer`, ``service``
    for the threaded :class:`AnalyticsServer`), so both report sheds
    through the same scheme:

    * ``{prefix}_shed_total{reason="overloaded"|"quota"}`` — every shed;
    * ``{prefix}_tenant_shed_total{tenant=...}`` — quota sheds, per
      tenant;
    * ``{prefix}_tenant_requests_total{tenant=...}`` — admitted
      requests, per tenant (via :meth:`admitted`).

    Response lines are pre-encoded once per ``(reason, tenant)`` and
    cached — the shed path is exactly the path that runs when the
    server is at its limit, so it must not spend time encoding JSON.
    """

    #: reason tag -> structured error code on the wire
    CODES = {"overloaded": "overloaded", "quota": "quota_exceeded"}

    def __init__(self, metrics: object, prefix: str) -> None:
        self._metrics = metrics
        self.prefix = prefix
        self._lines: dict[tuple[str, str | None], bytes] = {}
        self._lock = threading.Lock()

    def prepare(self, reason: str, message: str, tenant: str | None = None) -> bytes:
        """Pre-encode (and cache) the response line for one shed shape."""
        from .protocol import protocol_error

        key = (reason, tenant)
        with self._lock:
            line = self._lines.get(key)
            if line is None:
                line = json.dumps(
                    protocol_error(self.CODES[reason], message)
                ).encode("utf-8")
                self._lines[key] = line
        return line

    def quota_line(self, tenant: str | None) -> bytes:
        """The cached ``quota_exceeded`` line for one tenant."""
        who = "anonymous" if tenant is None else f"tenant {tenant!r}"
        return self.prepare(
            "quota",
            f"{who} exceeded its admission quota; back off and retry",
            tenant,
        )

    def shed(self, reason: str, tenant: str | None = None) -> None:
        """Count one shed (call sites answer with the cached line)."""
        self._metrics.counter(
            f"{self.prefix}_shed_total", reason=reason
        ).inc()
        if tenant is not None:
            self._metrics.counter(
                f"{self.prefix}_tenant_shed_total", tenant=tenant
            ).inc()

    def admitted(self, tenant: str | None) -> None:
        """Count one admitted request for a tenant-carrying envelope."""
        if tenant is not None:
            self._metrics.counter(
                f"{self.prefix}_tenant_requests_total", tenant=tenant
            ).inc()

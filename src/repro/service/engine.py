"""The query engine — JSON query dicts in, JSON-safe result dicts out.

One engine serves one session: a :class:`~repro.service.store.HypergraphStore`
of resident hypergraphs and a :class:`~repro.service.cache.SLineGraphCache`
of materialized approximations.  Queries are small dicts::

    {"op": "s_distance", "dataset": "lj", "s": 2, "src": 4, "dst": 17}

covering the Listing 5 s-metrics surface plus dataset stats, toplexes,
the Aksoy s-measure report, and session management (``register``,
``warm``, ``invalidate``, ``datasets``, ``metrics``).

Execution strategy per query:

* if ``L_s`` is cached (or s-monotone derivable) it is used;
* otherwise, for the traversal-shaped ops (``s_distance``,
  ``s_neighbors``, ``s_degree``, ``s_connected_components``,
  ``is_s_connected``), when the *estimated* build footprint exceeds the
  cache's remaining budget the engine answers from the lazy s-traversal
  kernels (:mod:`repro.algorithms.s_traversal`) — trading recomputation
  for memory instead of thrashing the cache;
* everything else materializes through the cache (oversized graphs are
  built but bypass admission).

Batches are dispatched on the :mod:`repro.parallel` runtime
(``parallel_for`` over query chunks), and every response carries a
``"via"`` tag (``cache:hit`` / ``cache:derive`` / ``cache:miss`` /
``cache:bypass`` / ``lazy`` / ``direct``) plus wall-clock ``"ms"`` so
clients can see how they were served.

**Wire protocol v2** (``docs/API.md`` has the full schema and the v1→v2
migration table): queries may pin the protocol version with
``"version": 1`` or ``2`` (or ``"v"`` on ops where ``v`` does not already
name a vertex); every response carries ``"ok"`` and ``"v"`` (the protocol
version served).  Failures carry a structured ``"error": {"code",
"message"}`` — the pre-v1 free-form ``"error_str"`` compat field is gone
as of v2.  The v1.1 surface (the ``update`` op — batched mutations with
live cache entries delta-patched under version-aware keys,
:mod:`repro.dynamic` — and the ``version`` negotiation op) is part of v2;
clients still pinning ``1.1`` are accepted as a legacy alias and served
the v2 surface with their pinned version echoed.  Clients pinned to v1
see the post-v1 ops as ``unknown_op`` — a structured error, never a
crash — and everything else behaves exactly as v1 did.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.io.json_io import jsonify
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracer import as_tracer
from repro.parallel.runtime import ParallelRuntime, TaskResult

from .cache import SLineGraphCache, estimate_linegraph_bytes
from .spec import SPEC
from .store import HypergraphStore

__all__ = [
    "QueryEngine",
    "QueryError",
    "LAZY_OPS",
    "LEGACY_VERSIONS",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
]

# The protocol surface is declared once, in repro.service.spec; the
# engine derives its tables from it so the spec cannot drift from what
# is served (the conformance rules R301-R304 prove the rest).

#: wire-protocol version this engine speaks by default
PROTOCOL_VERSION = SPEC.version

#: versions a client may pin; pinning v1 hides the post-v1 ops
SUPPORTED_VERSIONS = frozenset(SPEC.supported)

#: deprecated pins still accepted for one release (served the v2
#: surface, pinned version echoed back) — v1.1 clients keep working
LEGACY_VERSIONS = frozenset(SPEC.legacy)

#: ops that exist only after protocol v1 (v1.1 and later)
_POST_V1_OPS = SPEC.post_v1_ops()


class QueryError(ValueError):
    """A malformed or unanswerable query (bad op, missing field, ...).

    ``code`` is the machine-readable error code carried on the wire
    (``error.code`` in the structured response).
    """

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


#: ops answerable from the lazy s-traversal kernels without materializing
LAZY_OPS = frozenset(
    {
        "s_distance",
        "s_neighbors",
        "s_degree",
        "s_connected_components",
        "is_s_connected",
    }
)


#: ops where the ``"v"`` field names a vertex, not the protocol version
#: (those ops pin the version via ``"version"`` instead)
_VERTEX_OPS = frozenset(SPEC.vertex_ops)


def _require(query: dict, field: str) -> object:
    if field not in query:
        raise QueryError(
            f"op {query.get('op')!r} requires field {field!r}",
            code="missing_field",
        )
    return query[field]


class QueryEngine:
    """Dispatch JSON queries against resident hypergraphs.

    Parameters
    ----------
    store, cache:
        Shared session state; fresh instances are created when omitted.
    num_threads:
        Simulated thread count for batch dispatch (each
        :meth:`execute_batch` call gets its own
        :class:`~repro.parallel.runtime.ParallelRuntime`, so concurrent
        batches never share a ledger).
    backend, workers:
        Execution backend for batch dispatch
        (:mod:`repro.parallel.backends`).  Defaults come from the
        ``REPRO_BACKEND`` / ``REPRO_WORKERS`` environment variables (so
        a deployment flips the whole service without code changes),
        falling back to ``simulated``.  The pool is persistent — shared
        by every batch — and shut down by :meth:`close`.  Engine ops are
        internally locked, so batch bodies are safe on worker threads;
        under the ``process`` backend the (unpicklable) dispatch bodies
        transparently degrade to the backend's thread pool.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`.  Unlike the
        algorithm-level instruments this defaults to a **live** registry
        (the ``metrics``/``prometheus`` ops must have something to
        report); pass an explicit shared registry to aggregate across
        engines, or ``repro.obs.NULL_METRICS`` to disable.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; no-op when ``None``.
    """

    def __init__(
        self,
        store: HypergraphStore | None = None,
        cache: SLineGraphCache | None = None,
        num_threads: int = 4,
        metrics: MetricsRegistry | None = None,
        tracer: object = None,
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        import os

        from repro.parallel.backends import make_backend

        self.store = store if store is not None else HypergraphStore()
        self.obs_metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.tracer = as_tracer(tracer)
        self.cache = (
            cache
            if cache is not None
            else SLineGraphCache(metrics=self.obs_metrics, tracer=tracer)
        )
        self.num_threads = int(num_threads)
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND") or "simulated"
        if workers is None:
            env_workers = os.environ.get("REPRO_WORKERS")
            workers = int(env_workers) if env_workers else None
        self.backend = make_backend(backend, workers)
        self._op_lock = threading.Lock()
        self._op_counters: dict[str, dict[str, float]] = {}

    def close(self) -> None:
        """Shut down backend pools and durable store handles (idempotent)."""
        self.backend.close()
        self.store.close()

    def register_store(
        self,
        name: str,
        directory: object,
        replace: bool = False,
        hydrate: bool = True,
    ) -> dict:
        """Register a durable store directory and rehydrate its hot cache.

        The warm-restart entry point behind ``repro serve --store``: the
        store is opened (O(1) mmap adoption + WAL tail replay) and
        registered as a durable-dynamic dataset; with ``hydrate=True``
        the s-line graphs recorded in the manifest are admitted into the
        serving cache under the version-aware key — skipped automatically
        when WAL replay advanced past the snapshot (they would be stale).
        Returns a JSON-safe summary including the recovery report.
        """
        self.store.register(
            name,
            directory,
            replace=replace,
            tracer=self.tracer,
            metrics=self.obs_metrics,
        )
        handle = self.store.store_handle(name)
        hydrated = []
        if handle is not None and hydrate:
            key = self.store.versioned_name(name)
            for (s, over_edges), lg in sorted(handle.hot_linegraphs().items()):
                if self.cache.put(key, s, over_edges, lg):
                    hydrated.append({"s": s, "over_edges": over_edges})
        out = {
            "dataset": name,
            "directory": str(directory),
            "hydrated": hydrated,
        }
        if handle is not None:
            out["version"] = handle.version
            out["recovery"] = handle.recovery.as_dict()
        return out

    # -- public API ----------------------------------------------------------
    @staticmethod
    def _version_of(query: dict, op: str) -> object:
        """The protocol version a query pins, or ``None`` (= current)."""
        if "version" in query:
            return query["version"]
        if "v" in query and op not in _VERTEX_OPS:
            return query["v"]
        return None

    def _fail(
        self,
        op: object,
        code: str,
        message: str,
        served: object = None,
    ) -> dict:
        return {
            "ok": False,
            "op": op,
            "v": PROTOCOL_VERSION if served is None else served,
            "error": {"code": code, "message": message},
        }

    def execute(self, query: dict) -> dict:
        """Run one query; never raises — errors come back as responses."""
        if not isinstance(query, dict):
            return self._fail(
                None, "bad_request", "query must be a JSON object"
            )
        op = query.get("op")
        t0 = time.perf_counter()
        served = PROTOCOL_VERSION
        try:
            version = self._version_of(query, op)
            if version is not None:
                if (
                    version not in SUPPORTED_VERSIONS
                    and version not in LEGACY_VERSIONS
                ):
                    raise QueryError(
                        f"unsupported protocol version {version!r}; "
                        f"this engine speaks "
                        f"{sorted(SUPPORTED_VERSIONS)}",
                        code="unsupported_version",
                    )
                served = version
            if not isinstance(op, str):
                raise QueryError("query must carry a string 'op' field")
            if served == 1 and op in _POST_V1_OPS:
                # a v1 client cannot see the post-v1 surface: same
                # failure shape an actual v1 engine would have produced
                raise QueryError(
                    f"unknown op {op!r} (requires protocol >= 1.1)",
                    code="unknown_op",
                )
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise QueryError(f"unknown op {op!r}", code="unknown_op")
            with self.tracer.span("service." + op):
                response = handler(query)
        except (QueryError, KeyError, ValueError, TypeError) as exc:
            elapsed = time.perf_counter() - t0
            op_label = op if isinstance(op, str) else "?"
            if isinstance(exc, QueryError):
                code = exc.code
            elif isinstance(exc, KeyError):
                code = "unknown_dataset"
            else:
                code = "invalid_argument"
            self._record(op_label, elapsed, ok=False, code=code)
            message = str(exc.args[0]) if exc.args else str(exc)
            return self._fail(op, code, message, served=served)
        elapsed = time.perf_counter() - t0
        self._record(op, elapsed, ok=True)
        out = {"ok": True, "op": op, "v": served}
        out.update(response)
        out["ms"] = round(elapsed * 1e3, 3)
        return jsonify(out)

    def execute_batch(
        self,
        queries: list[dict],
        runtime: ParallelRuntime | None = None,
        backend: str | None = None,
        workers: int | None = None,
    ) -> list[dict]:
        """Run a batch on the parallel runtime; responses in input order.

        By default batches dispatch on the engine's persistent execution
        backend; ``backend``/``workers`` override it for one batch (the
        wire protocol's batch envelope forwards them).  Engine ops are
        internally locked, so concurrent dispatch on worker threads
        returns the same responses as serial dispatch.
        """
        if not queries:
            return []
        rt = runtime
        own_rt = None
        if rt is None and self.num_threads > 1 and len(queries) > 1:
            from repro.parallel.backends import make_backend

            be = (
                self.backend
                if backend is None
                else make_backend(backend, workers)
            )
            rt = own_rt = ParallelRuntime(
                num_threads=self.num_threads,
                partitioner="cyclic",
                tracer=self.tracer,
                backend=be,
                metrics=self.obs_metrics,
            )
        out: list[dict | None] = [None] * len(queries)
        ids = np.arange(len(queries), dtype=np.int64)

        def body(chunk: np.ndarray) -> TaskResult:
            results = [(int(i), self.execute(queries[int(i)])) for i in chunk]
            return TaskResult(results, float(chunk.size))

        try:
            if rt is None:
                parts = [body(ids).value]
            else:
                rt.new_run()
                parts = rt.parallel_for(
                    rt.partition(ids), body, phase="query_batch", pure=True
                )
        finally:
            # a one-batch backend override owns its pool; the engine's
            # persistent backend is shared and closed only by close()
            if own_rt is not None and backend is not None:
                own_rt.backend.close()
        for part in parts:
            for i, resp in part:
                out[i] = resp
        return out  # type: ignore[return-value]

    def metrics(self) -> dict:
        """Service counters: per-op latency, cache stats, resident sets.

        ``registry`` is the shared :class:`MetricsRegistry` snapshot —
        the same instruments the ``prometheus`` op exposes.
        """
        with self._op_lock:
            ops = {
                op: {
                    "count": int(st["count"]),
                    "errors": int(st["errors"]),
                    "total_ms": round(st["total_s"] * 1e3, 3),
                    "mean_ms": round(
                        st["total_s"] * 1e3 / st["count"], 3
                    )
                    if st["count"]
                    else 0.0,
                    "max_ms": round(st["max_s"] * 1e3, 3),
                }
                for op, st in sorted(self._op_counters.items())
            }
        return jsonify(
            {
                "ops": ops,
                "cache": self.cache.snapshot(),
                "datasets": self.store.names(),
                "registry": self.obs_metrics.snapshot(),
                "backend": {
                    "name": self.backend.name,
                    "workers": self.backend.workers,
                    "fallback_tasks": self.backend.fallback_tasks,
                },
            }
        )

    def prometheus(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        from repro.obs.prometheus import prometheus_text

        return prometheus_text(self.obs_metrics)

    # -- plumbing ------------------------------------------------------------
    def _record(
        self, op: str, seconds: float, ok: bool, code: str | None = None
    ) -> None:
        with self._op_lock:
            st = self._op_counters.setdefault(
                op, {"count": 0, "errors": 0, "total_s": 0.0, "max_s": 0.0}
            )
            st["count"] += 1
            st["errors"] += 0 if ok else 1
            st["total_s"] += seconds
            st["max_s"] = max(st["max_s"], seconds)
        m = self.obs_metrics
        m.counter("service_requests_total", op=op).inc()
        m.histogram(
            "service_request_seconds", bounds=LATENCY_BUCKETS, op=op
        ).observe(seconds)
        if not ok:
            m.counter(
                "service_errors_total", op=op, code=code or "error"
            ).inc()

    def _dataset(self, query: dict) -> tuple:
        name = _require(query, "dataset")
        return name, self.store.get(name)

    @staticmethod
    def _s(query: dict) -> int:
        s = int(query.get("s", 1))
        if s < 1:
            raise QueryError("s must be >= 1", code="invalid_argument")
        return s

    @staticmethod
    def _side(query: dict) -> bool:
        return bool(query.get("over_edges", True))

    def _linegraph(self, query: dict) -> tuple:
        """Materialize (or fetch) the query's s-line graph via the cache.

        Cache keys are version-aware (``name@vN`` for updated dynamic
        datasets) so a patched entry can never answer for a stale state.
        """
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        lg, how = self.cache.get_or_build(
            key, self._s(query), hg, self._side(query)
        )
        return lg, f"cache:{how}"

    def _should_serve_lazy(self, query: dict) -> bool:
        if query.get("op") not in LAZY_OPS:
            return False
        mode = query.get("materialize", "auto")
        if mode == "never":
            return True
        if mode == "always":
            return False
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        if self.cache.lookup(key, self._s(query), self._side(query)):
            return False  # already cheap
        remaining = self.cache.remaining_bytes()
        if remaining is None:
            return False
        est = estimate_linegraph_bytes(hg, self._s(query), self._side(query))
        return est > remaining

    def _lazy_side(self, query: dict) -> dict:
        _, hg = self._dataset(query)
        bi = hg.biadjacency
        return bi if self._side(query) else bi.dual()

    # -- s-metric ops --------------------------------------------------------
    def _op_s_distance(self, query: dict) -> dict:
        src = int(_require(query, "src"))
        dst = int(_require(query, "dst"))
        if self._should_serve_lazy(query):
            from repro.algorithms.s_traversal import s_distance_lazy

            d = s_distance_lazy(
                self._lazy_side(query), src, dst, self._s(query)
            )
            return {"result": int(d), "via": "lazy"}
        lg, via = self._linegraph(query)
        return {"result": lg.s_distance(src, dst), "via": via}

    def _op_s_path(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        path = lg.s_path(int(_require(query, "src")), int(_require(query, "dst")))
        return {"result": path, "via": via}

    def _op_s_neighbors(self, query: dict) -> dict:
        v = int(_require(query, "v"))
        if self._should_serve_lazy(query):
            from repro.algorithms.s_traversal import s_neighbors_lazy

            nbrs = s_neighbors_lazy(self._lazy_side(query), v, self._s(query))
            return {"result": nbrs, "via": "lazy"}
        lg, via = self._linegraph(query)
        return {"result": np.sort(lg.s_neighbors(v)), "via": via}

    def _op_s_degree(self, query: dict) -> dict:
        v = int(_require(query, "v"))
        if self._should_serve_lazy(query):
            from repro.algorithms.s_traversal import s_neighbors_lazy

            deg = s_neighbors_lazy(
                self._lazy_side(query), v, self._s(query)
            ).size
            return {"result": int(deg), "via": "lazy"}
        lg, via = self._linegraph(query)
        return {"result": lg.s_degree(v), "via": via}

    def _op_s_connected_components(self, query: dict) -> dict:
        singletons = bool(query.get("return_singletons", False))
        if self._should_serve_lazy(query):
            comps = self._lazy_components(query, singletons)
            return {"result": comps, "via": "lazy"}
        lg, via = self._linegraph(query)
        comps = lg.s_connected_components(return_singletons=singletons)
        return {"result": [c for c in comps], "via": via}

    def _lazy_components(self, query: dict, singletons: bool) -> list:
        from repro.algorithms.s_traversal import s_connected_components_lazy

        labels = s_connected_components_lazy(
            self._lazy_side(query), self._s(query)
        )
        groups: dict[int, list[int]] = {}
        for v, lab in enumerate(labels.tolist()):
            groups.setdefault(lab, []).append(v)
        out = [
            sorted(members)
            for members in groups.values()
            if len(members) > 1 or singletons
        ]
        out.sort(key=lambda c: c[0])
        return out

    def _op_is_s_connected(self, query: dict) -> dict:
        if self._should_serve_lazy(query):
            comps = self._lazy_components(query, singletons=False)
            return {"result": len(comps) == 1, "via": "lazy"}
        lg, via = self._linegraph(query)
        return {"result": lg.is_s_connected(), "via": via}

    def _op_s_diameter(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        return {"result": lg.s_diameter(), "via": via}

    def _op_s_eccentricity(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        v = query.get("v")
        return {
            "result": lg.s_eccentricity(None if v is None else int(v)),
            "via": via,
        }

    def _op_s_betweenness_centrality(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        bc = lg.s_betweenness_centrality(
            normalized=bool(query.get("normalized", True)),
            weighted=bool(query.get("weighted", False)),
        )
        return {"result": bc, "via": via}

    def _op_s_closeness_centrality(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        v = query.get("v")
        return {
            "result": lg.s_closeness_centrality(None if v is None else int(v)),
            "via": via,
        }

    def _op_s_harmonic_closeness_centrality(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        v = query.get("v")
        return {
            "result": lg.s_harmonic_closeness_centrality(
                None if v is None else int(v)
            ),
            "via": via,
        }

    def _op_s_pagerank(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        pr = lg.s_pagerank(damping=float(query.get("damping", 0.85)))
        return {"result": pr, "via": via}

    def _op_s_core_number(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        return {"result": lg.s_core_number(), "via": via}

    def _op_s_maximal_independent_set(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        mis = lg.s_maximal_independent_set(seed=int(query.get("seed", 0)))
        return {"result": mis, "via": via}

    def _op_s_sssp(self, query: dict) -> dict:
        lg, via = self._linegraph(query)
        dist = lg.s_sssp(
            int(_require(query, "src")),
            weighted=bool(query.get("weighted", False)),
        )
        return {"result": dist, "via": via}

    def _op_s_info(self, query: dict) -> dict:
        """Structure card of one s-line graph (vertices/edges/isolated)."""
        lg, via = self._linegraph(query)
        return {
            "result": {
                "s": lg.s,
                "over_edges": lg.over_edges,
                "num_vertices": lg.num_vertices(),
                "num_edges": lg.num_edges(),
                "num_isolated": int(lg.num_vertices() - lg.non_isolated().size),
                "bytes": SLineGraphCache.entry_bytes(lg),
            },
            "via": via,
        }

    # -- hypergraph-level ops ------------------------------------------------
    def _op_stats(self, query: dict) -> dict:
        name, hg = self._dataset(query)
        card = self.store.stats(name)
        card["edge_size_dist"] = hg.edge_size_dist()
        card["node_degree_dist"] = hg.node_degree_dist()
        return {"result": card, "via": "direct"}

    def _op_toplexes(self, query: dict) -> dict:
        _, hg = self._dataset(query)
        return {"result": hg.toplexes(), "via": "direct"}

    def _op_s_metrics(self, query: dict) -> dict:
        from repro.core.smetrics import s_metrics_report

        _, hg = self._dataset(query)
        s_values = query.get("s_values", [self._s(query)])
        reports = s_metrics_report(hg.biadjacency, list(s_values))
        return {
            "result": {s: rep for s, rep in sorted(reports.items())},
            "via": "direct",
        }

    # -- session ops ---------------------------------------------------------
    def _op_register(self, query: dict) -> dict:
        name = _require(query, "name")
        source = _require(query, "source")
        replace = bool(query.get("replace", False))
        if self.store._is_store_dir(source):
            # durable path: open the store, replay its WAL tail, and
            # rehydrate persisted hot line graphs into the cache
            info = self.register_store(name, source, replace=replace)
        else:
            self.store.register(name, source, replace=replace)
            info = {"dataset": name}
        hg = self.store.get(name)
        info["num_edges"] = hg.number_of_edges()
        info["num_nodes"] = hg.number_of_nodes()
        return {"result": info, "via": "direct"}

    def _op_datasets(self, query: dict) -> dict:
        return {"result": self.store.names(), "via": "direct"}

    def _op_warm(self, query: dict) -> dict:
        """Prebuild ``L_s`` for each requested s (ascending, so later s
        values ride the s-monotone derive path)."""
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        s_values = sorted(int(s) for s in query.get("s_values", [1]))
        over = self._side(query)
        served = {}
        for s in s_values:
            _, how = self.cache.get_or_build(key, s, hg, over)
            served[s] = how
        return {"result": served, "via": "direct"}

    def _op_invalidate(self, query: dict) -> dict:
        name = query.get("dataset")
        if name is None:
            dropped = self.cache.invalidate(None)
        else:
            # entries may live under the bare name (pre-update) or the
            # current versioned key — clear both
            dropped = self.cache.invalidate(name)
            key = self.store.versioned_name(name)
            if key != name:
                dropped += self.cache.invalidate(key)
        return {"result": {"dropped": dropped}, "via": "direct"}

    # -- dynamic-update ops (protocol v1.1) ----------------------------------
    def _op_version(self, query: dict) -> dict:
        """Protocol negotiation: what this engine speaks and serves."""
        return {
            "result": {
                "protocol": PROTOCOL_VERSION,
                "supported": sorted(SUPPORTED_VERSIONS),
                "legacy": sorted(LEGACY_VERSIONS),
                "gated_ops": sorted(_POST_V1_OPS),
            },
            "via": "direct",
        }

    def _op_update(self, query: dict) -> dict:
        """Apply a batch of mutations to a resident dataset.

        ``ops`` is a list of mutation records (``{"op": "add_edge",
        "members": [...]}``, ...).  The dataset is promoted to dynamic in
        place if needed; live cached s-line graphs of the pre-update
        version are delta-patched (or dropped, when the dirty fraction
        makes a rebuild cheaper — :mod:`repro.dynamic.policy`) and
        re-admitted under the new version-aware key.  ``compact=True``
        additionally folds the mutation log into a fresh frozen base.
        """
        from repro.core.slinegraph import SLineGraph
        from repro.dynamic.incremental import patch_linegraph
        from repro.dynamic.policy import decide_patch_or_rebuild

        name = _require(query, "dataset")
        ops = _require(query, "ops")
        if not isinstance(ops, list) or not ops:
            raise QueryError(
                "'ops' must be a non-empty list of mutation records",
                code="invalid_argument",
            )
        old_key = self.store.versioned_name(name)
        dyn = self.store.get_dynamic(
            name, tracer=self.tracer, metrics=self.obs_metrics
        )
        try:
            res = dyn.apply(ops)
        except ValueError as exc:
            raise QueryError(str(exc), code="invalid_mutation") from None
        new_key = self.store.versioned_name(name)
        state = dyn.state
        outcomes: dict[str, str] = {}
        for s, over_edges, lg in self.cache.entries_for(old_key):
            dirty = res.dirty_edges if over_edges else res.dirty_nodes
            n = state.num_edges() if over_edges else state.num_nodes()
            decision = decide_patch_or_rebuild(len(dirty), n)
            label = f"s={s},{'edges' if over_edges else 'nodes'}"
            if decision == "patch":
                side = state if over_edges else state.dual()
                try:
                    patched = patch_linegraph(
                        lg.edgelist,
                        side,
                        sorted(dirty),
                        s,
                        tracer=self.tracer,
                        metrics=self.obs_metrics,
                    )
                except ValueError:
                    outcomes[label] = "dropped"
                    continue
                admitted = self.cache.put(
                    new_key,
                    s,
                    over_edges,
                    SLineGraph(patched, s=s, over_edges=over_edges),
                )
                outcomes[label] = "patched" if admitted else "patched:bypass"
            else:
                outcomes[label] = "dropped"
            self.obs_metrics.counter(
                "dynamic_cache_patches_total", outcome=outcomes[label]
            ).inc()
        self.cache.invalidate(old_key)
        if bool(query.get("compact", False)):
            dyn.compact()
        body = res.as_dict()
        body["dataset"] = name
        body["cache"] = outcomes
        body["compacted"] = bool(query.get("compact", False))
        return {"result": body, "via": "direct"}

    def _op_metrics(self, query: dict) -> dict:
        return {"result": self.metrics(), "via": "direct"}

    def _op_prometheus(self, query: dict) -> dict:
        return {"result": self.prometheus(), "via": "direct"}

"""``repro.service`` — the serving layer: resident hypergraphs, cached
s-line graphs, a concurrent query engine, and JSON-lines TCP servers.

The paper's workflow (Listing 5) is *build once, query many times*: the
expensive lower-order approximation ``L_s(H)`` is materialized and then
answers an arbitrary number of cheap s-metric queries.  The library
classes support that within one script, but nothing held hypergraphs
resident *across* queries, clients, or CLI invocations.  This package is
that missing layer:

* :mod:`~repro.service.store` — a session-scoped registry of named,
  resident :class:`~repro.core.hypergraph.NWHypergraph` instances;
* :mod:`~repro.service.cache` — a byte-budgeted LRU of materialized
  :class:`~repro.core.slinegraph.SLineGraph` objects with **s-monotone
  reuse** and a pluggable cold-build hook;
* :mod:`~repro.service.engine` — JSON query dicts in, JSON-safe results
  out, batches dispatched on the :mod:`repro.parallel` runtime, with
  lazy s-traversal fallbacks under memory pressure;
* :mod:`~repro.service.shard` — the sharded engine: hyperedge-range
  partitions, scatter-gather fast paths, bit-identical answers;
* :mod:`~repro.service.protocol` — transport-agnostic wire framing
  (protocol v2) shared by both servers;
* :mod:`~repro.service.server` — the threaded JSON-lines TCP server
  (stdlib ``socketserver``);
* :mod:`~repro.service.aserver` — the asyncio front door: pipelined
  connections, bounded in-flight work, admission control, graceful
  drain;
* :mod:`~repro.service.quota` — per-tenant token-bucket admission
  (``quotas=`` on either server) with one counter-tagged shed path
  (:class:`ShedLedger`) shared by both front doors;
* :mod:`~repro.service.session` — the one client surface
  (:class:`Session` / :class:`SocketSession` / :class:`InProcessSession`
  with typed :class:`ServiceError`); the old ``ServiceClient`` /
  ``InProcessClient`` names are deprecated aliases.

CLI: ``python -m repro serve`` / ``python -m repro query``.
"""

from .aserver import AsyncAnalyticsServer
from .cache import CacheStats, SLineGraphCache, estimate_linegraph_bytes
from .quota import ShedLedger, TenantQuotas, TokenBucket, extract_tenant
from .engine import (
    LEGACY_VERSIONS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    QueryEngine,
    QueryError,
)
from .server import AnalyticsServer
from .session import (
    InProcessClient,
    InProcessSession,
    ServiceClient,
    ServiceError,
    Session,
    SocketSession,
)
from .shard import ShardedEngine, ShardPlan, plan_shards
from .spec import SPEC, ProtocolSpec
from .store import HypergraphStore

__all__ = [
    "AnalyticsServer",
    "AsyncAnalyticsServer",
    "CacheStats",
    "HypergraphStore",
    "InProcessClient",
    "InProcessSession",
    "LEGACY_VERSIONS",
    "PROTOCOL_VERSION",
    "ProtocolSpec",
    "QueryEngine",
    "QueryError",
    "SPEC",
    "SLineGraphCache",
    "SUPPORTED_VERSIONS",
    "ServiceClient",
    "ServiceError",
    "Session",
    "ShardPlan",
    "ShardedEngine",
    "ShedLedger",
    "SocketSession",
    "TenantQuotas",
    "TokenBucket",
    "estimate_linegraph_bytes",
    "extract_tenant",
    "plan_shards",
]

"""``repro.service`` — the serving layer: resident hypergraphs, cached
s-line graphs, a concurrent query engine, and a JSON-lines TCP server.

The paper's workflow (Listing 5) is *build once, query many times*: the
expensive lower-order approximation ``L_s(H)`` is materialized and then
answers an arbitrary number of cheap s-metric queries.  The library
classes support that within one script, but nothing held hypergraphs
resident *across* queries, clients, or CLI invocations.  This package is
that missing layer:

* :mod:`~repro.service.store` — a session-scoped registry of named,
  resident :class:`~repro.core.hypergraph.NWHypergraph` instances;
* :mod:`~repro.service.cache` — a byte-budgeted LRU of materialized
  :class:`~repro.core.slinegraph.SLineGraph` objects with **s-monotone
  reuse** (``L_s`` derived from a cached ``L_{s'}``, ``s' < s``, by
  thresholding overlap weights — no counting pass);
* :mod:`~repro.service.engine` — JSON query dicts in, JSON-safe results
  out, batches dispatched on the :mod:`repro.parallel` runtime, with
  lazy s-traversal fallbacks under memory pressure;
* :mod:`~repro.service.server` — a threaded JSON-lines TCP server
  (stdlib ``socketserver``) plus socket and in-process clients.

CLI: ``python -m repro serve`` / ``python -m repro query``.
"""

from .cache import CacheStats, SLineGraphCache, estimate_linegraph_bytes
from .engine import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    QueryEngine,
    QueryError,
)
from .server import AnalyticsServer, InProcessClient, ServiceClient
from .store import HypergraphStore

__all__ = [
    "AnalyticsServer",
    "CacheStats",
    "HypergraphStore",
    "InProcessClient",
    "PROTOCOL_VERSION",
    "QueryEngine",
    "QueryError",
    "SLineGraphCache",
    "SUPPORTED_VERSIONS",
    "ServiceClient",
    "estimate_linegraph_bytes",
]

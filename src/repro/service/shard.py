"""Sharded serving — hyperedge-range partitions with scatter-gather.

NWHy's scaling story (paper §IV–V) is partitioned parallel work over the
two-hop expansion; the serving layer realizes it by splitting the
*hyperedge ID space* into ``num_shards`` load-balanced contiguous ranges
(:func:`repro.structures.relabel.balanced_ranges` over relabel-by-degree
order, so each shard owns roughly equal incidence mass) and computing
each shard's slice of the s-line graph independently, over the engine's
execution backend — under the ``process`` backend the incidence CSRs
cross as zero-copy :mod:`repro.parallel.shared` handles, exactly like
the PR 5 builders.

The key identity making scatter-gather *bit-exact*: each shard runs the
two-hop counting kernel with ``upper_only=False`` restricted to its own
rows, keeping every pair ``(e, f)`` with ``|e ∩ f| >= s`` for ``e`` in
the shard (:class:`ShardPairsKernel`).  Because the shards partition the
rows:

* **routing** is exact — *all* s-neighbors of a vertex ``v`` appear in
  the owning shard's partial, so ``s_neighbors``/``s_degree`` touch one
  shard only;
* **merging** is exact — the per-shard partials cover every s-line edge
  (each undirected edge twice, once per endpoint's owner), so a
  union-find sweep over the concatenated pairs reproduces the single
  engine's connected components, and
  :func:`~repro.linegraph.common.finalize_edges` over the concatenation
  reproduces the canonical full edge list **bit-for-bit** (duplicates
  agree on their overlap count; first-wins dedup).

:class:`ShardedEngine` plugs this in *under* the ordinary
:class:`~repro.service.engine.QueryEngine`: every cache build goes
through the scatter-gather assembly (the cache's ``builder`` hook), so
hit/derive/eviction/lazy semantics — and therefore every op's result —
are identical to the unsharded engine by construction; on cache misses
the traversal ops take shard fast paths (``via: "shard:route"`` /
``"shard:merge"``) instead of materializing.  Shard/queue metrics flow
through :mod:`repro.obs` (``service_shard_*``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.linegraph.common import (
    emit_kernel_counters,
    empty_linegraph,
    finalize_edges,
    total_candidates,
)
from repro.linegraph.dispatch import KERNEL_NAMES, adaptive_rows
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.parallel.shared import open_handles
from repro.structures.relabel import balanced_ranges

from .engine import QueryEngine, _require

__all__ = ["ShardPairsKernel", "ShardPlan", "ShardedEngine", "plan_shards"]


class ShardPairsKernel:
    """Per-shard counting body (picklable, pure, zero-copy).

    ``chunk`` is one shard's array of row IDs.  Unlike the builders'
    :class:`~repro.linegraph.kernels.HashmapCountKernel` this walks with
    ``upper_only=False``: the shard owns its rows, not the upper
    triangle, so it must emit *every* partner ``f`` of each owned ``e``
    (self-pairs dropped).  ``kernel`` picks the counting strategy per
    :data:`~repro.linegraph.dispatch.KERNEL_NAMES` — default ``"auto"``,
    the degree-bucketed dispatcher, every choice bit-identical.  Returns
    ``TaskResult((src, dst, overlap, stats), work)``.
    """

    __slots__ = ("edges", "nodes", "s", "kernel")

    def __init__(
        self, edges: object, nodes: object, s: int,
        kernel: str | None = None,
    ) -> None:
        self.edges = edges
        self.nodes = nodes
        self.s = int(s)
        name = kernel or "auto"
        if name not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {name!r}; choose from {sorted(KERNEL_NAMES)}"
            )
        self.kernel = name

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges, self.nodes) as (edges, nodes):
            src, dst, cnt, stats, work = adaptive_rows(
                edges,
                nodes,
                chunk,
                self.s,
                upper_only=False,
                force=None if self.kernel == "auto" else self.kernel,
            )
            return TaskResult((src, dst, cnt, stats), work)


@dataclass
class ShardPlan:
    """Placement of one vertex space across shards.

    ``parts[i]`` is the sorted array of original IDs shard ``i`` owns;
    ``owner[v]`` is the shard owning vertex ``v``.  Ranges are contiguous
    in the relabel-by-degree space, so per-shard two-hop work tracks
    incidence mass (the paper's locality argument), not raw ID counts.
    """

    num_shards: int
    over_edges: bool
    parts: list = field(repr=False)
    loads: np.ndarray = field(repr=False)
    owner: np.ndarray = field(repr=False)

    def num_vertices(self) -> int:
        return int(self.owner.size)

    def summary(self) -> list[dict]:
        """JSON-safe per-shard placement card."""
        return [
            {
                "shard": i,
                "vertices": int(part.size),
                "load": float(self.loads[part].sum()) if part.size else 0.0,
            }
            for i, part in enumerate(self.parts)
        ]


def plan_shards(
    hypergraph: object, num_shards: int, over_edges: bool = True
) -> ShardPlan:
    """Partition one side's ID space into load-balanced shard ranges.

    ``over_edges=True`` shards hyperedge IDs by hyperedge size;
    ``False`` shards hypernode IDs by node degree (the dual line graph's
    vertex space).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    bi = hypergraph.biadjacency
    loads = bi.edge_sizes() if over_edges else bi.node_degrees()
    parts = balanced_ranges(loads, num_shards)
    owner = np.empty(loads.size, dtype=np.int64)
    for i, part in enumerate(parts):
        owner[part] = i
    return ShardPlan(
        num_shards=int(num_shards),
        over_edges=bool(over_edges),
        parts=parts,
        loads=np.asarray(loads, dtype=np.float64),
        owner=owner,
    )


def _union_find_labels(n: int, partials: list) -> np.ndarray:
    """Component labels from per-shard pair partials (no graph build).

    Classic union-find with path compression + union-by-min-root; the
    final pass relabels every vertex to its root, so two vertices share
    a label iff some chain of kept pairs connects them — the same
    partition :func:`repro.graph.cc.connected_components` computes on
    the assembled graph.
    """
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for src, dst, _ in partials:
        for a, b in zip(src.tolist(), dst.tolist()):
            ra, rb = find(a), find(b)
            if ra != rb:
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra
    for v in range(n):
        parent[v] = find(v)
    return parent


def _group_components(
    labels: np.ndarray, return_singletons: bool
) -> list[np.ndarray]:
    """Label array → component lists, matching ``SLineGraph`` semantics
    (sorted members, sorted by first member, singletons opt-in)."""
    groups: dict[int, list[int]] = {}
    for v, lab in enumerate(labels.tolist()):
        groups.setdefault(lab, []).append(v)
    out = [
        np.array(sorted(members), dtype=np.int64)
        for members in groups.values()
        if len(members) > 1 or return_singletons
    ]
    out.sort(key=lambda a: int(a[0]))
    return out


class ShardedEngine(QueryEngine):
    """A :class:`QueryEngine` whose heavy lifting is sharded.

    Drop-in replacement: same ops, same wire protocol, same caching —
    every response is bit-identical to the unsharded engine's (the
    property suite in ``tests/service/test_shard_equivalence.py`` holds
    this to account).  What changes is *how* cold answers are computed:

    * all cold s-line builds assemble from per-shard partials computed
      on the execution backend (the cache's ``builder`` hook);
    * on cache misses, ``s_neighbors``/``s_degree`` route to the owning
      shard (``via: "shard:route"``), and the connectivity ops merge
      per-shard partials through union-find (``via: "shard:merge"``)
      without materializing the full graph;
    * the ``shards`` op (protocol >= 1.1) reports placement and load.

    The engine installs its assembly hook on ``cache`` — do not share
    one cache instance between a sharded and an unsharded engine.
    """

    #: ops served by owner-shard routing on cache miss
    _ROUTED_OPS = frozenset({"s_neighbors", "s_degree"})

    def __init__(
        self, num_shards: int = 2, kernel: str | None = None,
        **kwargs: object,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        super().__init__(**kwargs)
        self.num_shards = int(num_shards)
        # counting-kernel selection for every shard scatter/route (one of
        # KERNEL_NAMES; None = "auto", the adaptive dispatcher)
        self.kernel = kernel
        self._shard_lock = threading.Lock()
        self._plans: dict[tuple[str, bool], ShardPlan] = {}
        self._partial_memo: tuple | None = None
        self.cache.builder = self._build_linegraph
        self.obs_metrics.gauge("service_shards").set(self.num_shards)

    # -- planning ------------------------------------------------------------
    def _plan(
        self, key: str, hypergraph: object, over_edges: bool
    ) -> ShardPlan:
        """The (memoized) placement for one dataset version and side."""
        plan_key = (key, bool(over_edges))
        with self._shard_lock:
            plan = self._plans.get(plan_key)
            if plan is not None and plan.num_vertices() == (
                hypergraph.number_of_edges()
                if over_edges
                else hypergraph.number_of_nodes()
            ):
                return plan
        plan = plan_shards(hypergraph, self.num_shards, over_edges)
        with self._shard_lock:
            if len(self._plans) > 64:  # old dataset versions; drop all
                self._plans.clear()
            self._plans[plan_key] = plan
        return plan

    # -- scatter-gather ------------------------------------------------------
    def _scatter(
        self, key: str, s: int, hypergraph: object, over_edges: bool
    ) -> list:
        """Compute every shard's pair partial on the execution backend."""
        plan = self._plan(key, hypergraph, over_edges)
        bi = (
            hypergraph.biadjacency
            if over_edges
            else hypergraph.biadjacency.dual()
        )
        rt = ParallelRuntime(
            num_threads=plan.num_shards,
            partitioner="blocked",
            tracer=self.tracer,
            backend=self.backend,
            metrics=self.obs_metrics,
        )
        rt.new_run()
        with self.tracer.span(
            "shard.scatter", dataset=key, s=s, shards=plan.num_shards
        ):
            with rt.share(bi.edges, bi.nodes) as (se, sn):
                kernel = ShardPairsKernel(se, sn, s, kernel=self.kernel)
                parts = rt.parallel_for(
                    plan.parts, kernel, phase="shard_pairs", pure=True
                )
        out = []
        for i, (src, dst, cnt, stats) in enumerate(parts):
            self.obs_metrics.counter(
                "service_shard_pairs_total", shard=str(i)
            ).inc(int(src.size))
            self.obs_metrics.counter(
                "service_shard_candidates_total", shard=str(i)
            ).inc(total_candidates(stats))
            emit_kernel_counters(self.obs_metrics, stats)
            out.append((src, dst, cnt))
        self.obs_metrics.counter(
            "service_shard_scatters_total",
            side="edges" if over_edges else "nodes",
        ).inc()
        return out

    def _partials(
        self, key: str, s: int, hypergraph: object, over_edges: bool
    ) -> list:
        """Per-shard partials, memoized for the most recent (key, s, side).

        One entry bounds memory; the common pattern — a merge fast path
        immediately followed by an assembly build of the same graph —
        pays for the scatter once.
        """
        memo_key = (key, int(s), bool(over_edges))
        with self._shard_lock:
            if self._partial_memo is not None and self._partial_memo[0] == memo_key:
                return self._partial_memo[1]
        parts = self._scatter(key, s, hypergraph, over_edges)
        with self._shard_lock:
            self._partial_memo = (memo_key, parts)
        return parts

    def _build_linegraph(self, dataset, s, hypergraph, over_edges):
        """The cache's builder hook: assemble ``L_s`` from shard partials.

        Concatenation + :func:`finalize_edges` reproduces the canonical
        single-engine edge list bit-for-bit (see module docstring), so
        everything served from cache is sharded *and* exact.
        """
        n = (
            hypergraph.number_of_edges()
            if over_edges
            else hypergraph.number_of_nodes()
        )
        parts = self._partials(dataset, s, hypergraph, over_edges)
        if not parts:
            return empty_linegraph(n)
        src = np.concatenate([p[0] for p in parts])
        dst = np.concatenate([p[1] for p in parts])
        cnt = np.concatenate([p[2] for p in parts])
        with self.tracer.span("shard.assemble", dataset=dataset, s=s):
            return finalize_edges(src, dst, cnt, n)

    # -- fast-path plumbing --------------------------------------------------
    def _side_size(self, hypergraph: object, over_edges: bool) -> int:
        return int(
            hypergraph.number_of_edges()
            if over_edges
            else hypergraph.number_of_nodes()
        )

    def _shard_serves(self, query: dict, *vertices: int) -> bool:
        """Whether the shard fast path should answer this query.

        Cache hits/derives are cheaper than any scatter — those fall
        through to the ordinary cached path.  ``materialize: "always"``
        pins the materializing path, mirroring the unsharded engine.
        Out-of-range vertices also fall through so error behavior stays
        byte-compatible with the unsharded engine.
        """
        if query.get("materialize", "auto") == "always":
            return False
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        if self.cache.lookup(key, self._s(query), self._side(query)):
            return False
        n = self._side_size(hg, self._side(query))
        return all(0 <= v < n for v in vertices)

    def _route_pairs(self, query: dict, v: int) -> np.ndarray:
        """One vertex's pair row, computed by its owning shard."""
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        s = self._s(query)
        over = self._side(query)
        plan = self._plan(key, hg, over)
        shard = int(plan.owner[v])
        bi = hg.biadjacency if over else hg.biadjacency.dual()
        rt = ParallelRuntime(
            num_threads=1,
            partitioner="blocked",
            tracer=self.tracer,
            backend=self.backend,
            metrics=self.obs_metrics,
        )
        rt.new_run()
        with self.tracer.span("shard.route", dataset=key, s=s, shard=shard):
            with rt.share(bi.edges, bi.nodes) as (se, sn):
                kernel = ShardPairsKernel(se, sn, s, kernel=self.kernel)
                parts = rt.parallel_for(
                    [np.array([v], dtype=np.int64)],
                    kernel,
                    phase="shard_route",
                    pure=True,
                )
        self.obs_metrics.counter(
            "service_shard_requests_total", mode="route", shard=str(shard)
        ).inc()
        src, dst, cnt, _ = parts[0]
        return dst

    # -- routed ops ----------------------------------------------------------
    def _op_s_neighbors(self, query: dict) -> dict:
        v = int(_require(query, "v"))
        if not self._shard_serves(query, v):
            return super()._op_s_neighbors(query)
        return {
            "result": np.sort(self._route_pairs(query, v)),
            "via": "shard:route",
        }

    def _op_s_degree(self, query: dict) -> dict:
        v = int(_require(query, "v"))
        if not self._shard_serves(query, v):
            return super()._op_s_degree(query)
        return {
            "result": int(self._route_pairs(query, v).size),
            "via": "shard:route",
        }

    # -- merged ops ----------------------------------------------------------
    def _merged_labels(self, query: dict) -> tuple[np.ndarray, list]:
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        over = self._side(query)
        partials = self._partials(key, self._s(query), hg, over)
        n = self._side_size(hg, over)
        self.obs_metrics.counter(
            "service_shard_requests_total", mode="merge", shard="*"
        ).inc()
        return _union_find_labels(n, partials), partials

    def _op_s_connected_components(self, query: dict) -> dict:
        if not self._shard_serves(query):
            return super()._op_s_connected_components(query)
        singletons = bool(query.get("return_singletons", False))
        labels, _ = self._merged_labels(query)
        return {
            "result": _group_components(labels, singletons),
            "via": "shard:merge",
        }

    def _op_is_s_connected(self, query: dict) -> dict:
        if not self._shard_serves(query):
            return super()._op_is_s_connected(query)
        labels, partials = self._merged_labels(query)
        live_src = [p[0] for p in partials if p[0].size]
        if not live_src:
            return {"result": False, "via": "shard:merge"}
        live = np.unique(np.concatenate(live_src))
        return {
            "result": bool(np.unique(labels[live]).size == 1),
            "via": "shard:merge",
        }

    def _op_s_distance(self, query: dict) -> dict:
        src = int(_require(query, "src"))
        dst = int(_require(query, "dst"))
        if not self._shard_serves(query, src, dst):
            return super()._op_s_distance(query)
        labels, _ = self._merged_labels(query)
        if labels[src] != labels[dst]:
            # disconnected: the DSU already proves it, no BFS needed
            return {"result": -1, "via": "shard:merge"}
        # connected: assemble the exact graph (reusing the memoized
        # partials through the cache builder) and BFS on it
        return super()._op_s_distance(query)

    # -- introspection -------------------------------------------------------
    def _op_shards(self, query: dict) -> dict:
        """Placement report: per-shard vertex counts and incidence load."""
        name, hg = self._dataset(query)
        key = self.store.versioned_name(name)
        over = self._side(query)
        plan = self._plan(key, hg, over)
        return {
            "result": {
                "dataset": name,
                "over_edges": over,
                "num_shards": plan.num_shards,
                "shards": plan.summary(),
            },
            "via": "direct",
        }

    def metrics(self) -> dict:
        out = super().metrics()
        out["sharding"] = {"num_shards": self.num_shards}
        return out

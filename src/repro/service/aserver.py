"""The asyncio front door — pipelined connections, backpressure, drain.

The threaded :class:`~repro.service.server.AnalyticsServer` spends one
OS thread per connection; at the paper's "millions of users" serving
scale that is the bottleneck long before the engine is.  This server
multiplexes every connection on one event loop and bounds the work it
admits:

* **persistent pipelined connections** — clients may send any number of
  request lines without waiting; responses come back **in request
  order** per connection (a per-connection write queue of response
  futures preserves ordering even though executions overlap);
* **bounded in-flight execution** — engine calls run on a small thread
  pool gated by an ``asyncio`` semaphore (``max_inflight``), so a burst
  can never fan out into unbounded threads;
* **admission control** — beyond ``max_pending`` accepted-but-unfinished
  requests the server *sheds* instead of buffering: excess requests get
  an immediate structured ``{"error": {"code": "overloaded"}}`` response
  (clients can back off) rather than a stall, and the bounded
  per-connection write queue throttles the reader (TCP backpressure) so
  memory stays bounded under any pipelining depth;
* **per-tenant quotas** — with ``quotas=`` configured, requests carrying
  a ``"tenant"`` id in the envelope pass token-bucket admission
  (:mod:`repro.service.quota`) *before* the global pending check: a
  tenant past its rate gets an immediate structured ``quota_exceeded``
  response from a pre-encoded cached line, so one tenant's burst can
  neither consume the global budget nor blow another tenant's p99 (the
  noisy-neighbor scenario in :mod:`repro.bench.load` proves this);
* **graceful drain** — :meth:`stop` closes the listener, lets every
  accepted request finish and flush its response (bounded by
  ``drain_timeout``), then tears the loop down.

Wire protocol and engine semantics are identical to the threaded server
(:mod:`repro.service.protocol` is shared), so
:class:`~repro.service.session.SocketSession` works against either.
Queue-depth/connection/shed metrics are emitted through the engine's
:mod:`repro.obs` registry (``service_async_*``).

The loop runs on a background thread; :meth:`start`/:meth:`stop` (or the
context manager) are called from ordinary synchronous code, same as the
threaded server.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from .engine import QueryEngine
from .protocol import dispatch_line, protocol_error
from .quota import ShedLedger, TenantQuotas, extract_tenant

__all__ = ["AsyncAnalyticsServer"]


class AsyncAnalyticsServer:
    """Asyncio JSON-lines server over one shared engine.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.service.engine.QueryEngine` (a sharded
        engine drops in unchanged).  Constructed fresh when omitted; the
        server never closes the engine — symmetrical with the threaded
        server, the owner does.
    max_inflight:
        Engine executions allowed to run concurrently (thread-pool size
        and semaphore bound).
    max_pending:
        Accepted-but-unfinished requests across all connections before
        admission control sheds with ``overloaded`` responses.
    max_queue:
        Per-connection bound on queued (unwritten) responses; a reader
        that outruns its writer suspends here, pushing backpressure into
        the client's TCP window.
    drain_timeout:
        Seconds :meth:`stop` waits for in-flight connections to flush.
    quotas:
        Optional per-tenant admission quotas: a
        :class:`~repro.service.quota.TenantQuotas` or its spec dict
        (``{"bursty": {"rate": 50, "burst": 100}}``).  Checked before
        the global ``max_pending`` budget; sheds answer with a cached
        ``quota_exceeded`` line and count
        ``service_async_tenant_shed_total{tenant=...}``.
    """

    def __init__(
        self,
        engine: QueryEngine | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        max_pending: int = 256,
        max_queue: int = 128,
        drain_timeout: float = 5.0,
        quotas: "TenantQuotas | dict | None" = None,
    ) -> None:
        if max_inflight < 1 or max_pending < 1 or max_queue < 1:
            raise ValueError("bounds must be >= 1")
        self.engine = engine if engine is not None else QueryEngine()
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.max_pending = int(max_pending)
        self.max_queue = int(max_queue)
        self.drain_timeout = float(drain_timeout)
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        # loop-thread state (created inside the loop; mutated only there)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._sem: asyncio.Semaphore | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._conns: set = set()
        self._pending = 0
        self.quotas = TenantQuotas.coerce(quotas)
        m = self.engine.obs_metrics
        self._g_conns = m.gauge("service_async_connections")
        self._g_pending = m.gauge("service_async_pending")
        self._c_requests = m.counter("service_async_requests_total")
        self._c_overloaded = m.counter("service_async_overloaded_total")
        self._ledger = ShedLedger(m, "service_async")
        self._overloaded_line = self._ledger.prepare(
            "overloaded",
            f"server at capacity ({self.max_pending} requests "
            "pending); back off and retry",
        )
        if self.quotas is not None:
            # per-tenant quota_exceeded lines are precomputed the same
            # way the overloaded line is; tenants born from the "*"
            # default spec cache theirs on first shed
            for tenant in self.quotas.tenants:
                self._ledger.quota_line(tenant)

    # -- lifecycle (control thread) ------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    def start(self) -> "AsyncAnalyticsServer":
        """Run the loop on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-aserve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            exc = self._startup_error
            self._thread.join(timeout=1)
            self._thread = None
            raise exc
        return self

    def stop(self) -> None:
        """Graceful drain: stop accepting, flush in-flight, tear down."""
        thread = self._thread
        if thread is None:
            return
        self._thread = None
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)
        thread.join(timeout=self.drain_timeout + 10.0)

    def wait(self) -> None:
        """Block until the server stops (foreground serving)."""
        thread = self._thread
        if thread is not None:
            thread.join()

    def __enter__(self) -> "AsyncAnalyticsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- loop thread ---------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # repro: noqa-R004 — the loop thread's last line of defense: surface startup/teardown failures to start() instead of dying silently on a daemon thread
            self._startup_error = exc
        finally:
            # joining the executor's worker threads blocks — it must
            # happen here, on the loop thread after asyncio.run has
            # torn the loop down, never inside a coroutine (R101)
            pool = self._pool
            if pool is not None:
                pool.shutdown(wait=True)
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-aserve"
        )
        server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sock = server.sockets[0].getsockname()
        self._address = (sock[0], sock[1])
        self._started.set()
        async with server:
            await self._stop_event.wait()
            server.close()
            await server.wait_closed()
            await self._drain()

    async def _drain(self) -> None:
        """Give live connections ``drain_timeout`` to flush, then cancel."""
        conns = [t for t in self._conns if not t.done()]
        if not conns:
            return
        done, pending = await asyncio.wait(
            conns, timeout=self.drain_timeout
        )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    # -- per-connection protocol ---------------------------------------------
    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        self._g_conns.inc()
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # drain deadline hit: close without flushing the rest
        except (ConnectionError, OSError):
            # client vanished mid-conversation (reset, broken pipe):
            # routine under load-generator churn, not a server error
            pass
        finally:
            self._conns.discard(task)
            self._g_conns.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._stop_event is not None
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue)
        writer_task = asyncio.create_task(self._write_loop(queue, writer))
        stop_task = asyncio.create_task(self._stop_event.wait())
        try:
            while True:
                read_task = asyncio.create_task(reader.readline())
                await asyncio.wait(
                    {read_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done():
                    # shutdown: stop reading, flush what was accepted
                    read_task.cancel()
                    try:
                        await read_task
                    except asyncio.CancelledError:
                        pass
                    break
                raw = read_task.result().strip()
                if not raw:
                    if reader.at_eof():
                        break
                    continue
                # a full write queue suspends this reader — per-connection
                # memory is bounded no matter how deep the pipelining
                await queue.put(self._admit(raw))
        finally:
            stop_task.cancel()
            await queue.put(None)
            await writer_task

    def _admit(self, raw: bytes) -> "asyncio.Future[bytes]":
        """Accept one request line, or shed it.

        Shed order: the tenant's token bucket first (a quota'd burst
        must not consume the global budget), then the global
        ``max_pending`` cap.  Both paths answer from pre-encoded cached
        lines through the shared :class:`ShedLedger`.
        """
        assert self._loop is not None
        tenant = (
            extract_tenant(raw) if self.quotas is not None else None
        )
        if self.quotas is not None and not self.quotas.admit(tenant):
            self._ledger.shed("quota", tenant)
            return self._shed_response(self._ledger.quota_line(tenant))
        if self._pending >= self.max_pending:
            self._c_overloaded.inc()
            self._ledger.shed("overloaded", tenant)
            return self._shed_response(self._overloaded_line)
        self._pending += 1
        self._g_pending.set(self._pending)
        self._c_requests.inc()
        self._ledger.admitted(tenant)
        return asyncio.create_task(self._execute(raw))

    def _shed_response(self, line: bytes) -> "asyncio.Future[bytes]":
        fut: asyncio.Future = self._loop.create_future()
        fut.set_result(line)
        return fut

    async def _execute(self, raw: bytes) -> bytes:
        assert self._sem is not None and self._loop is not None
        try:
            async with self._sem:
                return await self._loop.run_in_executor(
                    self._pool, dispatch_line, self.engine, raw
                )
        except Exception as exc:  # repro: noqa-R004 — serving boundary: a malformed envelope must come back as a structured error, never kill the connection's writer
            return json.dumps(
                protocol_error(
                    "internal_error", f"{type(exc).__name__}: {exc}"
                )
            ).encode("utf-8")
        finally:
            self._pending -= 1
            self._g_pending.set(self._pending)

    @staticmethod
    async def _write_loop(
        queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Pop response futures FIFO, write each as it resolves.

        Always consumes to the ``None`` sentinel — even after the client
        vanishes — so a blocked reader can never deadlock on a full
        queue.
        """
        broken = False
        while True:
            item = await queue.get()
            if item is None:
                return
            try:
                line = await item
            except asyncio.CancelledError:
                continue
            if broken:
                continue
            try:
                writer.write(line + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                broken = True

"""The declarative wire-protocol spec — the single source of truth.

Every op name, structured error code, and version gate the service
speaks lives here, once, as a plain literal.  Runtime code *derives*
its tables from :data:`SPEC` (``engine.PROTOCOL_VERSION``,
``engine._POST_V1_OPS``, ...), and the protocol-conformance lint rules
(:mod:`repro.check.protocol_conformance`) *extract* the same literal
from this module's AST and diff it against what the front doors, the
engine, and ``docs/API.md`` actually implement.  That split is the
point: the checker proves conformance without importing the service,
so a broken import can never silently pass the conformance gate.

Keep :data:`SPEC` a **pure literal** — every keyword argument must be
evaluable by :func:`ast.literal_eval`.  No comprehensions, no name
references, no arithmetic.  The conformance rules enforce this (a
non-literal spec is itself a finding, R301).

This module must stay a leaf: it imports nothing from
:mod:`repro.service`, so both :mod:`~repro.service.protocol` and
:mod:`~repro.service.engine` can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ProtocolSpec", "SPEC"]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol surface: versions, ops (with the version that
    introduced each), canonical error codes, and field quirks.

    ``ops`` maps op name to the protocol version it appeared in; ops
    with ``since > 1`` are the *gated* surface a v1-pinned client must
    not see.  ``error_codes`` is the closed set of machine-readable
    ``error.code`` values any response may carry.  ``vertex_ops`` are
    the ops where the wire field ``"v"`` names a vertex rather than a
    protocol-version pin.
    """

    version: int
    supported: tuple[int, ...]
    legacy: tuple[float, ...]
    ops: Mapping[str, float] = field(default_factory=dict)
    error_codes: tuple[str, ...] = ()
    vertex_ops: tuple[str, ...] = ()

    def post_v1_ops(self) -> frozenset[str]:
        """Ops a client pinned to protocol v1 must not see."""
        return frozenset(
            op for op, since in self.ops.items() if since > 1
        )

    def ops_at(self, version: float) -> frozenset[str]:
        """The op surface visible to a client pinned to ``version``."""
        return frozenset(
            op for op, since in self.ops.items() if since <= version
        )


SPEC = ProtocolSpec(
    version=2,
    supported=(1, 2),
    legacy=(1.1,),
    ops={
        # -- v1 s-metric surface (Listing 5 + centralities) --------------
        "s_distance": 1,
        "s_path": 1,
        "s_neighbors": 1,
        "s_degree": 1,
        "s_connected_components": 1,
        "is_s_connected": 1,
        "s_diameter": 1,
        "s_eccentricity": 1,
        "s_betweenness_centrality": 1,
        "s_closeness_centrality": 1,
        "s_harmonic_closeness_centrality": 1,
        "s_pagerank": 1,
        "s_core_number": 1,
        "s_maximal_independent_set": 1,
        "s_sssp": 1,
        "s_info": 1,
        # -- v1 hypergraph / session surface -----------------------------
        "stats": 1,
        "toplexes": 1,
        "s_metrics": 1,
        "register": 1,
        "datasets": 1,
        "warm": 1,
        "invalidate": 1,
        "metrics": 1,
        "prometheus": 1,
        # -- post-v1 surface (gated: v1-pinned clients see unknown_op) ---
        "version": 1.1,
        "update": 1.1,
        "shards": 1.1,
    },
    error_codes=(
        "bad_request",
        "bad_json",
        "unknown_op",
        "missing_field",
        "unsupported_version",
        "unknown_dataset",
        "invalid_argument",
        "invalid_mutation",
        "overloaded",
        "quota_exceeded",
        "internal_error",
    ),
    vertex_ops=(
        "s_neighbors",
        "s_degree",
        "s_eccentricity",
        "s_closeness_centrality",
        "s_harmonic_closeness_centrality",
    ),
)

"""Byte-budgeted LRU cache of materialized s-line graphs.

The cache is keyed by ``(dataset, s, over_edges)`` and bounded by the
*measured* byte footprint of each entry (edge list + symmetrized CSR),
not an entry count — s-line graphs for the same budget can differ by
orders of magnitude in size (§III-B.3's blow-up).

Two ways a request avoids the counting pass:

* **hit** — the exact key is cached;
* **s-monotone derive** — some ``(dataset, s', over_edges)`` with
  ``s' < s`` is cached.  Every construction algorithm already records the
  overlap size ``|e ∩ f|`` as the edge weight, and ``L_s`` is exactly the
  sub-edge-list of ``L_{s'}`` whose weights reach ``s``
  (:func:`repro.linegraph.common.filter_overlaps`) — a single vectorized
  threshold instead of a two-hop counting pass.  The largest cached
  ``s' < s`` is preferred (fewest edges to filter).

Entries that alone exceed the whole budget are built and returned but
**not admitted** (counted as ``bypasses``) so one oversized graph cannot
flush the working set.  All counters are exposed via :meth:`snapshot`
and surfaced by the server's ``"metrics"`` op.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.hypergraph import NWHypergraph
from repro.core.slinegraph import SLineGraph

__all__ = ["CacheStats", "SLineGraphCache", "estimate_linegraph_bytes"]

#: bytes per s-line edge across edge list (src/dst/weight int64+int64+f64)
#: plus the symmetrized CSR (2 × (index + weight)); used only to *estimate*
#: a not-yet-built graph's footprint for admission / laziness decisions.
_BYTES_PER_EDGE = 24 + 2 * 16


def estimate_linegraph_bytes(
    hg: NWHypergraph, s: int, over_edges: bool = True
) -> int:
    """Cheap upper bound on the footprint of ``L_s`` before building it.

    Bounds the s-line edge count by the two-hop pair volume
    ``Σ_v d(v)·(d(v)-1)/2`` (every s-line edge is witnessed by ≥ s ≥ 1
    shared vertices), scaled to bytes per materialized edge.  Loose for
    dense overlap structure, but computable in one vectorized pass over
    the degree array — exactly what the engine's "is the budget tight?"
    check needs.
    """
    bi = hg.biadjacency
    deg = bi.node_degrees() if over_edges else bi.edge_sizes()
    deg = deg.astype(float)
    pairs = float((deg * (deg - 1.0)).sum()) / 2.0
    return int(pairs * _BYTES_PER_EDGE)


@dataclass
class CacheStats:
    """Counters of one :class:`SLineGraphCache` (all monotone but bytes)."""

    hits: int = 0
    derives: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    current_bytes: int = 0
    budget_bytes: int | None = None
    entries: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "derives": self.derives,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "current_bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
            "entries": self.entries,
        }


class SLineGraphCache:
    """LRU over materialized :class:`SLineGraph`\\ s under a byte budget.

    Parameters
    ----------
    budget_bytes:
        Total footprint allowed across entries; ``None`` disables
        eviction (unbounded).
    algorithm:
        Construction algorithm for cold builds (must be one that records
        overlap counts as weights — all the unweighted constructions do).
    builder:
        Optional construction hook ``builder(dataset, s, hypergraph,
        over_edges) -> EdgeList`` replacing the default
        :func:`~repro.linegraph.to_two_graph` cold-build path.  The
        returned edge list must be canonical and carry overlap counts as
        weights (so the s-monotone derive path stays valid).  This is
        how the sharded engine routes *every* cache build through its
        scatter-gather assembly (:mod:`repro.service.shard`) — hit,
        derive, and eviction behavior are untouched.
    metrics, tracer:
        Optional :mod:`repro.obs` instruments (no-op when ``None``).
        Instrument objects are resolved once here; without a live
        registry the warm-hit path pays only a ``None``-check.
    """

    def __init__(
        self,
        budget_bytes: int | None = 64 * 1024 * 1024,
        algorithm: str = "hashmap",
        metrics: object = None,
        tracer: object = None,
        builder: object = None,
        kernel: str | None = None,
    ) -> None:
        from repro.obs.metrics import as_metrics
        from repro.obs.tracer import as_tracer

        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 or None")
        self.algorithm = algorithm
        self.builder = builder
        # counting-kernel selection for cold builds (None = the builder's
        # default, i.e. the adaptive dispatcher for hashmap-family
        # algorithms); forwarded to to_two_graph and irrelevant when a
        # custom builder hook is installed
        self.kernel = kernel
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, int, bool], SLineGraph] = (
            OrderedDict()
        )
        self._sizes: dict[tuple[str, int, bool], int] = {}
        # dataset key -> the NWHypergraph its entries were built from, so
        # invalidate() can also drop the instance-level s_linegraph memo
        # (weak: the cache must not keep an unregistered dataset alive)
        self._owners: dict[str, weakref.ReferenceType[NWHypergraph]] = {}
        self.stats = CacheStats(budget_bytes=budget_bytes)
        m = as_metrics(metrics)
        # kept raw for cold builds: to_two_graph surfaces the per-kernel
        # linegraph_kernel_* / dispatch_* counters in the same registry
        self._metrics = metrics
        self._tracer = as_tracer(tracer)
        self._c_outcome = {
            how: m.counter("slinegraph_cache_requests_total", outcome=how)
            for how in ("hit", "derive", "miss", "bypass")
        }
        # the hit path is the one latency-critical spot: with no live
        # registry a warm hit must pay one None-check, not even a no-op
        # call (bench_service_cache pins the warm-path budget)
        self._inc_hit = (
            self._c_outcome["hit"].inc if metrics is not None else None
        )
        self._c_evictions = m.counter("slinegraph_cache_evictions_total")
        self._g_bytes = m.gauge("slinegraph_cache_bytes")
        self._g_entries = m.gauge("slinegraph_cache_entries")

    # -- introspection -------------------------------------------------------
    @property
    def budget_bytes(self) -> int | None:
        with self._lock:
            return self.stats.budget_bytes

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self.stats.current_bytes

    def remaining_bytes(self) -> int | None:
        """Budget headroom (``None`` when unbounded)."""
        with self._lock:
            if self.stats.budget_bytes is None:
                return None
            return max(0, self.stats.budget_bytes - self.stats.current_bytes)

    def keys(self) -> list[tuple[str, int, bool]]:
        """Cached keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def snapshot(self) -> dict:
        """JSON-safe counter snapshot plus the resident key list."""
        with self._lock:
            out = self.stats.as_dict()
            out["keys"] = [
                {"dataset": d, "s": s, "over_edges": oe, "bytes": self._sizes[(d, s, oe)]}
                for d, s, oe in self._entries
            ]
            return out

    # -- lookup --------------------------------------------------------------
    def lookup(
        self, dataset: str, s: int, over_edges: bool = True
    ) -> str | None:
        """How a request *would* be served: ``'hit'``, ``'derive'``, ``None``.

        Pure peek — no counters move, no recency changes.
        """
        with self._lock:
            if (dataset, int(s), bool(over_edges)) in self._entries:
                return "hit"
            if self._derivable_key(dataset, int(s), bool(over_edges)):
                return "derive"
            return None

    def _derivable_key(  # repro: noqa-R002 — every caller holds self._lock
        self, dataset: str, s: int, over_edges: bool
    ) -> tuple[str, int, bool] | None:
        best = None
        for key in self._entries:
            d, s2, oe = key
            if d == dataset and oe == over_edges and s2 < s:
                lg = self._entries[key]
                if lg.edgelist.weights is None:
                    continue  # cannot threshold without overlap counts
                if best is None or s2 > best[1]:
                    best = key
        return best

    # -- main entry point ----------------------------------------------------
    def get_or_build(
        self,
        dataset: str,
        s: int,
        hypergraph: NWHypergraph,
        over_edges: bool = True,
    ) -> tuple[SLineGraph, str]:
        """Return ``(L_s, how)`` with ``how ∈ {'hit', 'derive', 'miss',
        'bypass'}``; builds, derives, admits, and evicts as needed."""
        if s < 1:
            raise ValueError("s must be >= 1")
        s = int(s)
        over_edges = bool(over_edges)
        key = (dataset, s, over_edges)
        with self._lock:
            self._owners[dataset] = weakref.ref(hypergraph)
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if self._inc_hit is not None:
                    self._inc_hit()
                return self._entries[key], "hit"

            base_key = self._derivable_key(dataset, s, over_edges)
            if base_key is not None:
                from repro.linegraph.common import filter_overlaps

                base = self._entries[base_key]
                self._entries.move_to_end(base_key)
                lg = SLineGraph(
                    filter_overlaps(base.edgelist, s), s=s,
                    over_edges=over_edges,
                )
                self.stats.derives += 1
                self._c_outcome["derive"].inc()
                self._admit(key, lg)
                return lg, "derive"

        # Build outside the lock: construction is the expensive part and
        # must not serialize unrelated cache traffic.  A racing duplicate
        # build is benign — _admit re-checks under the lock.
        lg = self._build(hypergraph, s, over_edges, dataset)
        with self._lock:
            if key in self._entries:  # raced with another builder
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if self._inc_hit is not None:
                    self._inc_hit()
                return self._entries[key], "hit"
            self.stats.misses += 1
            admitted = self._admit(key, lg)
            self._c_outcome["miss" if admitted else "bypass"].inc()
            return lg, "miss" if admitted else "bypass"

    def _build(
        self, hypergraph: NWHypergraph, s: int, over_edges: bool,
        dataset: str = "?",
    ) -> SLineGraph:
        if self.builder is not None:
            with self._tracer.span(
                "cache.build", dataset=dataset, s=s, algorithm="builder"
            ):
                el = self.builder(dataset, s, hypergraph, over_edges)
            return SLineGraph(el, s=s, over_edges=over_edges)
        from repro.linegraph import to_two_graph

        h = (
            hypergraph.biadjacency
            if over_edges
            else hypergraph.biadjacency.dual()
        )
        with self._tracer.span(
            "cache.build", dataset=dataset, s=s, algorithm=self.algorithm
        ):
            el = to_two_graph(
                h,
                s,
                algorithm=self.algorithm,
                kernel=self.kernel,
                metrics=self._metrics,
            )
        return SLineGraph(el, s=s, over_edges=over_edges)

    # -- admission / eviction (call with lock held) --------------------------
    @staticmethod
    def entry_bytes(lg: SLineGraph) -> int:
        """Measured footprint of one entry (edge list + CSR)."""
        return lg.edgelist.nbytes() + lg.graph.nbytes()

    def _admit(  # repro: noqa-R002 — admission/eviction helper; every caller holds self._lock (see section header)
        self, key: tuple[str, int, bool], lg: SLineGraph
    ) -> bool:
        size = self.entry_bytes(lg)
        budget = self.stats.budget_bytes
        if budget is not None and size > budget:
            self.stats.bypasses += 1
            return False
        self._entries[key] = lg
        self._sizes[key] = size
        self.stats.current_bytes += size
        self.stats.entries = len(self._entries)
        if budget is not None:
            while self.stats.current_bytes > budget and len(self._entries) > 1:
                old_key, _ = self._entries.popitem(last=False)
                self.stats.current_bytes -= self._sizes.pop(old_key)
                self.stats.evictions += 1
                self._c_evictions.inc()
            # the newest entry is never evicted by its own insertion; if it
            # is the sole survivor the budget check above already passed
            self.stats.entries = len(self._entries)
        self._g_bytes.set(self.stats.current_bytes)
        self._g_entries.set(self.stats.entries)
        return True

    # -- external admission (the dynamic-update patch path) ------------------
    def put(
        self, dataset: str, s: int, over_edges: bool, lg: SLineGraph
    ) -> bool:
        """Admit an externally built (e.g. delta-patched) entry.

        Same admission/eviction rules as a cold build; an existing entry
        under the key is replaced (its bytes released first).  Returns
        whether the entry was admitted (oversized graphs bypass).
        """
        key = (dataset, int(s), bool(over_edges))
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.current_bytes -= self._sizes.pop(key)
            admitted = self._admit(key, lg)
            if not admitted:
                self._g_bytes.set(self.stats.current_bytes)
                self._g_entries.set(self.stats.entries)
            return admitted

    def entries_for(self, dataset: str) -> list[tuple[int, bool, SLineGraph]]:
        """Resident ``(s, over_edges, linegraph)`` triples of one dataset."""
        with self._lock:
            return [
                (s, oe, lg)
                for (d, s, oe), lg in self._entries.items()
                if d == dataset
            ]

    # -- maintenance ---------------------------------------------------------
    def invalidate(self, dataset: str | None = None) -> int:
        """Drop entries (all, or one dataset's); returns how many.

        Also clears the instance-level memo of every affected
        :class:`NWHypergraph` (``invalidate()``): the hypergraphs seen by
        :meth:`get_or_build` memoize their own s-line graphs, and an
        invalidate that dropped only the cache's copies could still serve
        a stale memoized line graph through the library path.
        """
        owners: list[NWHypergraph] = []
        with self._lock:
            if dataset is None:
                n = len(self._entries)
                self._entries.clear()
                self._sizes.clear()
                self.stats.current_bytes = 0
                doomed_owners = list(self._owners)
            else:
                doomed = [k for k in self._entries if k[0] == dataset]
                n = len(doomed)
                for k in doomed:
                    del self._entries[k]
                    self.stats.current_bytes -= self._sizes.pop(k)
                doomed_owners = [dataset] if dataset in self._owners else []
            for name in doomed_owners:
                hg = self._owners.pop(name)()
                if hg is not None:
                    owners.append(hg)
            self.stats.entries = len(self._entries)
            self._g_bytes.set(self.stats.current_bytes)
            self._g_entries.set(self.stats.entries)
        # outside the cache lock: NWHypergraph.invalidate only touches the
        # instance, and holding our lock across foreign code invites
        # lock-order inversions
        for hg in owners:
            hg.invalidate()
        return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def debug_verify(self) -> None:
        """Re-derive the byte accounting from the entries and assert it.

        Recomputes every per-entry size with :meth:`entry_bytes` and
        checks the invariants the mutation/patching paths must preserve:
        ``_entries`` and ``_sizes`` agree key-for-key, each recorded size
        matches a fresh measurement, ``stats.current_bytes`` is their
        sum, ``stats.entries`` is the entry count, and a configured
        budget is never exceeded (the eviction loop guarantees a sole
        oversized survivor cannot exist — it would have been bypassed at
        admission).  Raises :class:`AssertionError` with the discrepancy.
        """
        with self._lock:
            entry_keys = set(self._entries)
            size_keys = set(self._sizes)
            assert entry_keys == size_keys, (
                f"entry/size key mismatch: only-entries="
                f"{sorted(entry_keys - size_keys)}, "
                f"only-sizes={sorted(size_keys - entry_keys)}"
            )
            recomputed = {
                key: self.entry_bytes(lg) for key, lg in self._entries.items()
            }
            for key, measured in recomputed.items():
                assert self._sizes[key] == measured, (
                    f"stale size for {key}: recorded {self._sizes[key]}, "
                    f"measured {measured}"
                )
            total = sum(recomputed.values())
            assert self.stats.current_bytes == total, (
                f"current_bytes drift: stats say "
                f"{self.stats.current_bytes}, entries sum to {total}"
            )
            assert self.stats.entries == len(self._entries), (
                f"entry-count drift: stats say {self.stats.entries}, "
                f"cache holds {len(self._entries)}"
            )
            budget = self.stats.budget_bytes
            assert budget is None or total <= budget, (
                f"budget exceeded: {total} resident > {budget} budget"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            st = self.stats
            return (
                f"SLineGraphCache(entries={len(self._entries)}, "
                f"bytes={st.current_bytes}/{st.budget_bytes}, "
                f"hits={st.hits}, derives={st.derives}, misses={st.misses})"
            )

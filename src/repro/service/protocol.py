"""Wire-protocol framing shared by every transport front end.

Both servers — the threaded :mod:`repro.service.server` and the asyncio
:mod:`repro.service.aserver` — speak the same newline-delimited JSON
protocol: one request object per line, one response object (or response
array, for batches) per line.  This module owns the transport-agnostic
part: decoding a request line, routing it to an engine (single query vs.
``{"batch": [...]}`` envelope), and producing protocol-level error
responses.  The engine itself owns per-query semantics and versioning
(:mod:`repro.service.engine`).

**v2 envelope cleanup** (see ``docs/API.md`` for the migration table):

* protocol errors carry only the structured ``error: {code, message}``
  object — the pre-v1 free-form ``error_str`` string is gone;
* batch envelopes pin the version with ``"v"`` only — the pre-v1
  ``"version"`` alias is no longer honored on envelopes (individual
  queries keep ``"version"``, where ``"v"`` may name a vertex); the
  envelope pin is inherited by every item that does not pin its own;
* the ``backend`` field is validated against the live
  :data:`repro.parallel.backends.BACKEND_NAMES` registry rather than a
  hard-coded tuple, so new backends are automatically legal on the wire.
"""

from __future__ import annotations

import json

from .engine import (
    LEGACY_VERSIONS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    QueryEngine,
)
from .spec import SPEC

__all__ = ["SPEC", "dispatch", "dispatch_line", "protocol_error"]


def protocol_error(code: str, message: str) -> dict:
    """A transport-level failure response (bad JSON, bad envelope)."""
    return {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }


def dispatch(engine: QueryEngine, payload: object) -> object:
    """Route one decoded request line (single query or batch envelope)."""
    if isinstance(payload, dict) and "batch" in payload:
        v = payload.get("v")
        if (
            v is not None
            and v not in SUPPORTED_VERSIONS
            and v not in LEGACY_VERSIONS
        ):
            return protocol_error(
                "unsupported_version",
                f"unsupported protocol version {v!r}; "
                f"this server speaks {sorted(SUPPORTED_VERSIONS)}",
            )
        backend = payload.get("backend")
        if backend is not None:
            from repro.parallel.backends import BACKEND_NAMES

            if backend not in BACKEND_NAMES:
                return protocol_error(
                    "invalid_argument",
                    f"unknown backend {backend!r}; choose from "
                    f"{sorted(BACKEND_NAMES)}",
                )
        workers = payload.get("workers")
        queries = payload["batch"]
        if v is not None and isinstance(queries, list):
            # the envelope pin is inherited by every item that does not
            # pin its own version — a v1 envelope is a v1 batch
            queries = [
                q if not isinstance(q, dict) or "version" in q
                else {**q, "version": v}
                for q in queries
            ]
        return engine.execute_batch(
            queries,
            backend=backend,
            workers=None if workers is None else int(workers),
        )
    return engine.execute(payload)


def dispatch_line(engine: QueryEngine, raw: bytes) -> bytes:
    """One request line in, one response line out (both ``\\n``-free).

    Decoding failures become structured ``bad_json`` responses rather
    than dropped connections; the caller appends the newline framing.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        response: object = protocol_error(
            "bad_json", f"bad request line: {exc}"
        )
    else:
        response = dispatch(engine, payload)
    return json.dumps(response).encode("utf-8")

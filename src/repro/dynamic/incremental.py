"""Incremental s-line graph maintenance — patch, don't rebuild.

An s-line edge ``{e, f}`` depends only on the member sets of ``e`` and
``f``, so after a mutation batch only pairs with at least one *dirty*
endpoint can change.  That is exactly the situation the paper's
queue-based construction algorithms (Algorithms 1–2) were built for: the
iteration space is whatever IDs are enqueued, not a fixed ``[0, n_e)``
range.  Seeding the queue with the delta frontier — the dirty hyperedges
plus the neighbors they reach through shared vertices — computes the
changed overlap counts without touching the rest of the graph.

Two equivalent paths are provided:

* :func:`delta_pair_counts` / :func:`patch_linegraph` — the overlay
  path.  Runs the queue-hashmap counting step (two-hop walk + packed-key
  multiplicity count) directly over an
  :class:`~repro.dynamic.overlay.OverlayState`, so no CSR of the mutated
  state is ever materialized.  This is what the service's ``update`` op
  uses.
* :func:`patch_with_builder` — the frozen-CSR path.  Literally calls the
  stock queue-based builders (``queue_hashmap`` / ``queue_intersection``)
  with ``queue_ids`` set to the delta frontier, for callers that already
  hold a rebuilt :class:`~repro.structures.biadjacency.BiAdjacency`
  (``NWHypergraph.refresh_linegraphs``).

Both produce the canonical weighted edge list of
:func:`repro.linegraph.common.finalize_edges`, so patched graphs remain
bit-identical to from-scratch rebuilds — the property the test suite
enforces — and keep riding the cache's s-monotone derive path.
"""

from __future__ import annotations

import numpy as np

from repro.core.slinegraph import SLineGraph
from repro.linegraph.common import finalize_edges
from repro.structures.edgelist import EdgeList

from .policy import DEFAULT_PATCH_THRESHOLD, decide_patch_or_rebuild

__all__ = [
    "IncrementalSLineGraph",
    "delta_frontier",
    "delta_pair_counts",
    "patch_linegraph",
    "patch_with_builder",
]

_EMPTY = np.empty(0, dtype=np.int64)


def _dirty_array(dirty_ids) -> np.ndarray:
    arr = np.unique(np.asarray(list(dirty_ids), dtype=np.int64))
    if arr.size and arr[0] < 0:
        raise ValueError("dirty IDs must be non-negative")
    return arr


def delta_pair_counts(
    state, dirty_ids
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Overlap counts for every pair with a dirty endpoint (current state).

    ``state`` is anything exposing ``members(e)`` / ``memberships(v)`` /
    ``num_edges()`` over sorted unique arrays — an
    :class:`~repro.dynamic.overlay.OverlayState`, its dual, or a
    :class:`~repro.structures.biadjacency.BiAdjacency` via
    :func:`_adapt`.  Returns ``(src, dst, overlap, work)`` with ``src``
    dirty, ``dst`` any co-incident ID, both orientations present for
    dirty–dirty pairs (canonicalization happens in
    :func:`~repro.linegraph.common.finalize_edges`, whose first-wins
    dedup is safe because overlap is a function of the pair).  ``work``
    is the two-hop traversal count — the quantity the patch-vs-rebuild
    policy is calibrated against.
    """
    dirty = _dirty_array(dirty_ids)
    if dirty.size == 0:
        return _EMPTY, _EMPTY, _EMPTY, 0
    member_arrays = [state.members(int(e)) for e in dirty]
    sizes = np.fromiter(
        (a.size for a in member_arrays), count=dirty.size, dtype=np.int64
    )
    if int(sizes.sum()) == 0:
        return _EMPTY, _EMPTY, _EMPTY, 0
    members = np.concatenate(member_arrays)
    e_for_member = np.repeat(dirty, sizes)
    # resolve each distinct member's incident-edge list exactly once
    uniq_members, inverse = np.unique(members, return_inverse=True)
    incident = [state.memberships(int(v)) for v in uniq_members]
    inc_sizes = np.fromiter(
        (a.size for a in incident), count=uniq_members.size, dtype=np.int64
    )
    m_sizes = inc_sizes[inverse]
    cand = (
        np.concatenate([incident[i] for i in inverse])
        if members.size
        else _EMPTY
    )
    e_for_cand = np.repeat(e_for_member, m_sizes)
    work = int(cand.size + members.size)
    keep = cand != e_for_cand
    cand, e_for_cand = cand[keep], e_for_cand[keep]
    if cand.size == 0:
        return _EMPTY, _EMPTY, _EMPTY, work
    n = int(state.num_edges())
    key = e_for_cand * n + cand
    uniq, counts = np.unique(key, return_counts=True)
    return uniq // n, uniq % n, counts.astype(np.int64), work


def delta_frontier(state, dirty_ids) -> np.ndarray:
    """The queue seed: dirty IDs plus all IDs they share a vertex with.

    This is the frontier of Algorithms 1–2 restricted to the delta — the
    smallest ``queue_ids`` set for which the stock queue-based builders
    (whose pair enumeration keeps only ``f > e``) cover every pair with a
    dirty endpoint.
    """
    dirty = _dirty_array(dirty_ids)
    src, dst, _, _ = delta_pair_counts(state, dirty)
    return np.union1d(dirty, np.union1d(src, dst))


def patch_linegraph(
    old_el: EdgeList,
    state,
    dirty_ids,
    s: int,
    *,
    tracer=None,
    metrics=None,
) -> EdgeList:
    """Patch a canonical s-line edge list against the current state.

    Drops every old edge with a dirty endpoint, recounts exactly the
    dirty pairs with the queue-hashmap counting step, and re-canonicalizes.
    ``old_el`` must carry overlap counts as weights (every unweighted
    construction algorithm emits them) — patching a weight-less list
    would silently break the cache's s-monotone derive path, so it raises
    instead.
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    if s < 1:
        raise ValueError("s must be >= 1")
    if old_el.weights is None:
        raise ValueError(
            "patching requires overlap counts as edge weights on the old "
            "s-line edge list"
        )
    dirty = _dirty_array(dirty_ids)
    n = int(state.num_edges())
    if n < old_el.num_vertices():
        raise ValueError(
            "hyperedge space shrank; dynamic updates tombstone IDs, they "
            "never renumber"
        )
    tr = as_tracer(tracer)
    m = as_metrics(metrics)
    with tr.span("dynamic.patch", s=s, dirty=int(dirty.size)) as span:
        clean = ~(np.isin(old_el.src, dirty) | np.isin(old_el.dst, dirty))
        src, dst, counts, work = delta_pair_counts(state, dirty)
        live = counts >= s
        out = finalize_edges(
            np.concatenate([old_el.src[clean], src[live]]),
            np.concatenate([old_el.dst[clean], dst[live]]),
            np.concatenate([old_el.weights[clean].astype(np.int64), counts[live]]),
            n,
        )
        span.set(
            dropped=int((~clean).sum()), emitted=int(live.sum()), work=work
        )
        m.counter("dynamic_patched_pairs_total").inc(int(live.sum()))
        m.counter("dynamic_patch_work_total").inc(work)
    return out


def patch_with_builder(
    old_el: EdgeList,
    h,
    dirty_ids,
    s: int,
    *,
    algorithm: str = "queue_hashmap",
    runtime=None,
    tracer=None,
    metrics=None,
) -> EdgeList:
    """Patch using the stock queue-based builders on a frozen representation.

    ``h`` is a ``BiAdjacency`` or ``AdjoinGraph`` of the *post-mutation*
    state.  The builder is seeded with the delta frontier
    (:func:`delta_frontier` computed on ``h``); of its output only the
    rows touching a dirty ID are taken — the clean–clean rows it also
    covers are already present, unchanged, in ``old_el``.
    """
    from repro.linegraph.common import resolve_incidence
    from repro.linegraph.queue_hashmap import slinegraph_queue_hashmap
    from repro.linegraph.queue_intersect import slinegraph_queue_intersection

    builders = {
        "queue_hashmap": slinegraph_queue_hashmap,
        "queue_intersection": slinegraph_queue_intersection,
    }
    if algorithm not in builders:
        raise ValueError(
            f"patching supports {sorted(builders)}, not {algorithm!r}"
        )
    if old_el.weights is None:
        raise ValueError(
            "patching requires overlap counts as edge weights on the old "
            "s-line edge list"
        )
    dirty = _dirty_array(dirty_ids)
    edges, nodes, n_e, _ = resolve_incidence(h)
    adapter = _csr_adapter(edges, nodes, n_e)
    frontier = delta_frontier(adapter, dirty)
    delta = builders[algorithm](
        h, s, runtime=runtime, queue_ids=frontier,
        tracer=tracer, metrics=metrics,
    )
    touched = np.isin(delta.src, dirty) | np.isin(delta.dst, dirty)
    clean = ~(np.isin(old_el.src, dirty) | np.isin(old_el.dst, dirty))
    return finalize_edges(
        np.concatenate([old_el.src[clean], delta.src[touched]]),
        np.concatenate([old_el.dst[clean], delta.dst[touched]]),
        np.concatenate(
            [
                old_el.weights[clean].astype(np.int64),
                delta.weights[touched].astype(np.int64),
            ]
        ),
        n_e,
    )


class _csr_adapter:
    """Expose a pair of incidence CSRs through the overlay-state protocol."""

    __slots__ = ("_edges", "_nodes", "_n_e")

    def __init__(self, edges, nodes, n_e: int) -> None:
        self._edges, self._nodes, self._n_e = edges, nodes, n_e

    def num_edges(self) -> int:
        return self._n_e

    def members(self, e: int) -> np.ndarray:
        return self._edges[e]

    def memberships(self, v: int) -> np.ndarray:
        return self._nodes[v]


class IncrementalSLineGraph:
    """Keep materialized s-line graphs in sync with a mutating hypergraph.

    The caller materializes whichever ``s`` values it cares about
    (:meth:`materialize`); afterwards every
    :meth:`~repro.dynamic.hypergraph.DynamicHypergraph.apply` result fed
    to :meth:`update` patches them all in place — or rebuilds, when the
    shared policy (:mod:`repro.dynamic.policy`) says the delta is too
    large to be worth patching.

    Parameters
    ----------
    dyn:
        The :class:`~repro.dynamic.hypergraph.DynamicHypergraph` to track.
    over_edges:
        Side of the line graph (``False`` maintains s-clique graphs over
        the hypernode space via the overlay's dual view).
    threshold:
        Dirty-fraction crossover forwarded to the policy helper.
    tracer, metrics:
        Optional :mod:`repro.obs` instruments (no-op when ``None``).
    """

    def __init__(
        self,
        dyn,
        over_edges: bool = True,
        threshold: float = DEFAULT_PATCH_THRESHOLD,
        tracer=None,
        metrics=None,
    ) -> None:
        from repro.obs.metrics import as_metrics
        from repro.obs.tracer import as_tracer

        self.dyn = dyn
        self.over_edges = bool(over_edges)
        self.threshold = float(threshold)
        self._tracer = as_tracer(tracer)
        self._metrics = as_metrics(metrics)
        self._graphs: dict[int, SLineGraph] = {}
        self._version = dyn.version

    # -- introspection -------------------------------------------------------
    @property
    def s_values(self) -> list[int]:
        """The maintained s values, ascending."""
        return sorted(self._graphs)

    @property
    def version(self) -> int:
        """Hypergraph version the maintained graphs correspond to."""
        return self._version

    def linegraph(self, s: int) -> SLineGraph:
        """The maintained ``L_s`` (KeyError if never materialized)."""
        return self._graphs[int(s)]

    # -- lifecycle -----------------------------------------------------------
    def materialize(self, s: int) -> SLineGraph:
        """Build ``L_s`` from the current state and start maintaining it."""
        if self._version != self.dyn.version:
            raise RuntimeError(
                "maintained graphs are stale; call update() with the "
                "pending apply results first"
            )
        lg = self._rebuild(int(s))
        self._graphs[int(s)] = lg
        return lg

    def drop(self, s: int) -> None:
        """Stop maintaining ``L_s``."""
        self._graphs.pop(int(s), None)

    def _rebuild(self, s: int) -> SLineGraph:
        snap = self.dyn.snapshot()
        lg = snap.s_linegraph(
            s, over_edges=self.over_edges,
            tracer=self._tracer, metrics=self._metrics,
        )
        return lg

    # -- the incremental step ------------------------------------------------
    def update(self, result) -> dict[int, str]:
        """Fold one :class:`~repro.dynamic.hypergraph.ApplyResult` in.

        Returns ``{s: 'patch' | 'rebuild'}`` describing how each
        maintained graph was refreshed.  Results must arrive in version
        order (each apply's delta is relative to the previous version).
        """
        if result.version != self._version + 1:
            raise RuntimeError(
                f"apply result for version {result.version} cannot follow "
                f"maintained version {self._version}"
            )
        self._version = result.version
        if not self._graphs:
            return {}
        state = self.dyn.state if self.over_edges else self.dyn.state.dual()
        dirty = (
            result.dirty_edges if self.over_edges else result.dirty_nodes
        )
        outcomes: dict[int, str] = {}
        for s in self.s_values:
            how = decide_patch_or_rebuild(
                len(dirty), state.num_edges(), self.threshold
            )
            if how == "patch":
                el = patch_linegraph(
                    self._graphs[s].edgelist, state, dirty, s,
                    tracer=self._tracer, metrics=self._metrics,
                )
                self._graphs[s] = SLineGraph(
                    el, s=s, over_edges=self.over_edges
                )
            else:
                self._graphs[s] = self._rebuild(s)
            outcomes[s] = how
            self._metrics.counter(
                "dynamic_linegraph_refreshes_total", how=how
            ).inc()
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        side = "edges" if self.over_edges else "nodes"
        return (
            f"IncrementalSLineGraph(s={self.s_values}, over={side}, "
            f"version={self._version})"
        )

"""``DynamicHypergraph`` — a mutable hypergraph over a frozen snapshot.

The frozen-CSR world of the framework (``NWHypergraph`` and its index
sets) is layered under an append-only mutation log: reads resolve
through the :class:`~repro.dynamic.overlay.OverlayState` (touched rows
only), writes append :class:`~repro.dynamic.log.Mutation` records in
atomic batches, and :meth:`compact` folds the log back into CSR when the
overlay has grown past its usefulness.

Versioning: ``version`` counts applied batches since construction and
identifies the exact incidence state — the serving layer keys cached
s-line graphs by it, so a patched entry can never be confused with a
stale one.  :meth:`snapshot` materializes (and memoizes, per version) a
frozen :class:`~repro.core.hypergraph.NWHypergraph` of the current
state; with no pending mutations it is the base itself, so wrapping a
static dataset costs nothing until the first write.

Hyperedge IDs are **stable**: removal tombstones an ID (the edge becomes
empty) and additions append past the end.  That keeps every derived ID
space — s-line graph vertices, component labels, distances — aligned
across updates, which is what makes incremental patching
(:mod:`repro.dynamic.incremental`) a pure delta operation.

Thread-safety: every public method takes the instance lock; ``apply``
parses its whole batch before touching state, so a malformed record
rejects the batch atomically instead of half-applying it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.hypergraph import NWHypergraph

from .log import LogBatch, Mutation, MutationLog, parse_batch
from .overlay import OverlayState

__all__ = ["ApplyResult", "DynamicHypergraph"]


@dataclass(frozen=True)
class ApplyResult:
    """What one atomic batch did: the new version and its delta.

    ``dirty_edges`` / ``dirty_nodes`` are the IDs whose member /
    membership sets changed — the seed of the incremental s-line-graph
    frontier.  ``new_edges`` reports IDs assigned to ``add_edge``
    records, in record order.
    """

    version: int
    applied: int
    dirty_edges: frozenset[int]
    dirty_nodes: frozenset[int]
    new_edges: tuple[int, ...] = ()
    ops_by_kind: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-safe summary (the service's ``update`` response body)."""
        return {
            "version": self.version,
            "applied": self.applied,
            "dirty_edges": len(self.dirty_edges),
            "dirty_nodes": len(self.dirty_nodes),
            "new_edges": list(self.new_edges),
            "ops_by_kind": dict(self.ops_by_kind),
        }


class DynamicHypergraph:
    """Batched mutable hypergraph with versioned frozen snapshots.

    Parameters
    ----------
    base:
        The starting state — an :class:`~repro.core.hypergraph
        .NWHypergraph` (adopted as the version-0 snapshot).
    tracer, metrics:
        Optional :mod:`repro.obs` instruments; every apply/compact emits
        spans (``dynamic.apply`` / ``dynamic.compact``) and counters
        (``dynamic_ops_applied_total`` by kind, ``dynamic_batches_total``,
        ``dynamic_dirty_edges_total``, ``dynamic_compactions_total``).
        No-op when ``None``.
    version:
        Starting version number for ``base``.  Defaults to 0; a durable
        store (:mod:`repro.store`) reopening a snapshot taken at version
        *N* passes ``version=N`` so the batch count keeps climbing across
        restarts and versioned cache keys stay globally unique.
    """

    def __init__(
        self,
        base: NWHypergraph,
        tracer=None,
        metrics=None,
        version: int = 0,
    ) -> None:
        from repro.obs.metrics import as_metrics
        from repro.obs.tracer import as_tracer

        if not isinstance(base, NWHypergraph):
            raise TypeError(
                f"base must be an NWHypergraph, got {type(base).__name__}"
            )
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        self._lock = threading.RLock()
        self._base = base
        self._state = OverlayState(base.biadjacency)
        self._log = MutationLog()
        self._version = int(version)
        self._snapshot: NWHypergraph | None = base
        self._snapshot_version = self._version
        self._tracer = as_tracer(tracer)
        self._metrics = as_metrics(metrics)

    # -- alternate constructors ----------------------------------------------
    @classmethod
    def from_hyperedge_lists(
        cls,
        members,
        num_nodes: int | None = None,
        tracer=None,
        metrics=None,
    ) -> "DynamicHypergraph":
        """Build from a list of hyperedges, each a list of hypernode IDs."""
        return cls(
            NWHypergraph.from_hyperedge_lists(members, num_nodes=num_nodes),
            tracer=tracer,
            metrics=metrics,
        )

    # -- introspection -------------------------------------------------------
    @property
    def version(self) -> int:
        """Starting version plus the number of batches applied since."""
        with self._lock:
            return self._version

    @property
    def state(self) -> OverlayState:
        """The live overlay view (members/memberships of the current state)."""
        with self._lock:
            return self._state

    @property
    def base(self) -> NWHypergraph:
        """The frozen snapshot under the overlay (advances on compaction)."""
        with self._lock:
            return self._base

    def number_of_edges(self) -> int:
        with self._lock:
            return self._state.num_edges()

    def number_of_nodes(self) -> int:
        with self._lock:
            return self._state.num_nodes()

    def members(self, e: int) -> np.ndarray:
        """Hypernodes of hyperedge ``e`` in the current state."""
        with self._lock:
            return self._state.members(e).copy()

    def memberships(self, v: int) -> np.ndarray:
        """Hyperedges incident on hypernode ``v`` in the current state."""
        with self._lock:
            return self._state.memberships(v).copy()

    def pending_ops(self) -> int:
        """Mutations applied since the last compaction."""
        with self._lock:
            return self._log.num_ops

    def pending_batches(self) -> int:
        with self._lock:
            return self._log.num_batches

    def dirty_edges(self) -> frozenset[int]:
        """Hyperedges touched since the last compaction."""
        with self._lock:
            return self._log.dirty_edges()

    def dirty_nodes(self) -> frozenset[int]:
        with self._lock:
            return self._log.dirty_nodes()

    # -- mutation ------------------------------------------------------------
    def apply(self, batch) -> ApplyResult:
        """Apply one atomic batch of mutations; returns its delta.

        ``batch`` is a list of :class:`~repro.dynamic.log.Mutation`
        records or wire dicts (``{"op": "add_edge", "members": [...]}``).
        The whole batch is parsed first — a malformed or inapplicable
        record (unknown edge, absent incidence, ...) rejects the batch
        with ``ValueError`` and leaves the state untouched.
        """
        mutations = parse_batch(batch)
        with self._lock, self._tracer.span(
            "dynamic.apply", ops=len(mutations), version=self._version + 1
        ) as span:
            undo = _UndoLog(self._state)
            dirty_edges: set[int] = set()
            dirty_nodes: set[int] = set()
            new_edges: list[int] = []
            ops_by_kind: dict[str, int] = {}
            try:
                for mut in mutations:
                    self._apply_one(mut, dirty_edges, dirty_nodes, new_edges)
                    ops_by_kind[mut.kind] = ops_by_kind.get(mut.kind, 0) + 1
            except (ValueError, IndexError):
                undo.restore(self._state)
                raise
            self._version += 1
            result = ApplyResult(
                version=self._version,
                applied=len(mutations),
                dirty_edges=frozenset(dirty_edges),
                dirty_nodes=frozenset(dirty_nodes),
                new_edges=tuple(new_edges),
                ops_by_kind=ops_by_kind,
            )
            self._log.append(
                LogBatch(
                    version=self._version,
                    mutations=tuple(mutations),
                    dirty_edges=result.dirty_edges,
                    dirty_nodes=result.dirty_nodes,
                )
            )
            span.set(
                dirty_edges=len(dirty_edges), dirty_nodes=len(dirty_nodes)
            )
            m = self._metrics
            for kind, count in ops_by_kind.items():
                m.counter("dynamic_ops_applied_total", kind=kind).inc(count)
            m.counter("dynamic_batches_total").inc()
            m.counter("dynamic_dirty_edges_total").inc(len(dirty_edges))
            return result

    def _apply_one(  # repro: noqa-R002 — only called from apply() with self._lock held
        self,
        mut: Mutation,
        dirty_edges: set[int],
        dirty_nodes: set[int],
        new_edges: list[int],
    ) -> None:
        st = self._state
        if mut.kind == "add_edge":
            e = st.add_edge(mut.members)
            new_edges.append(e)
            dirty_edges.add(e)
            dirty_nodes.update(int(v) for v in mut.members)
        elif mut.kind == "remove_edge":
            removed = st.remove_edge(mut.edge)
            dirty_edges.add(mut.edge)
            dirty_nodes.update(removed.tolist())
        elif mut.kind == "add_incidence":
            if st.add_incidence(mut.edge, mut.node):
                dirty_edges.add(mut.edge)
                dirty_nodes.add(mut.node)
        else:  # remove_incidence
            st.remove_incidence(mut.edge, mut.node)
            dirty_edges.add(mut.edge)
            dirty_nodes.add(mut.node)

    # -- convenience single-op writers ---------------------------------------
    def add_edge(self, members) -> ApplyResult:
        return self.apply([Mutation("add_edge", members=tuple(members))])

    def remove_edge(self, edge: int) -> ApplyResult:
        return self.apply([Mutation("remove_edge", edge=edge)])

    def add_incidence(self, edge: int, node: int) -> ApplyResult:
        return self.apply([Mutation("add_incidence", edge=edge, node=node)])

    def remove_incidence(self, edge: int, node: int) -> ApplyResult:
        return self.apply([Mutation("remove_incidence", edge=edge, node=node)])

    # -- snapshots / compaction ----------------------------------------------
    def snapshot(self) -> NWHypergraph:
        """A frozen ``NWHypergraph`` of the current state (memoized by
        version).

        With no mutations applied since the base was adopted this is the
        base instance itself (zero cost, weights preserved).  Otherwise
        the overlay is folded into fresh incidence arrays; incidence
        weights do not survive mutation (the mutation vocabulary is
        unweighted).
        """
        with self._lock:
            if (
                self._snapshot is not None
                and self._snapshot_version == self._version
            ):
                return self._snapshot
            row, col = self._state.incidence_arrays()
            snap = NWHypergraph(
                row,
                col,
                num_edges=self._state.num_edges(),
                num_nodes=self._state.num_nodes(),
            )
            self._snapshot = snap
            self._snapshot_version = self._version
            return snap

    def compact(self) -> NWHypergraph:
        """Fold the mutation log into a fresh frozen base and clear it.

        The compacted base is also the return value; ``version`` is
        preserved (compaction changes the representation, not the
        state).
        """
        with self._lock, self._tracer.span(
            "dynamic.compact",
            version=self._version,
            pending_ops=self._log.num_ops,
        ):
            base = self.snapshot()
            self._base = base
            self._state = OverlayState(base.biadjacency)
            self._log.clear()
            self._metrics.counter("dynamic_compactions_total").inc()
            return base

    # -- derived structures ---------------------------------------------------
    def s_linegraph(self, s: int = 1, over_edges: bool = True, **kwargs):
        """``L_s`` of the current state (built on the frozen snapshot)."""
        return self.snapshot().s_linegraph(s, over_edges=over_edges, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"DynamicHypergraph(edges={self._state.num_edges()}, "
                f"nodes={self._state.num_nodes()}, version={self._version}, "
                f"pending_ops={self._log.num_ops})"
            )


class _UndoLog:
    """Cheap whole-overlay checkpoint for atomic batch rollback.

    The overlay dictionaries hold immutable arrays (every primitive
    replaces, never edits), so a shallow copy of the dicts plus the two
    cardinalities is a complete checkpoint.
    """

    __slots__ = ("_members", "_memberships", "_num_edges", "_num_nodes")

    def __init__(self, state: OverlayState) -> None:
        self._members = dict(state._members)
        self._memberships = dict(state._memberships)
        self._num_edges = state._num_edges
        self._num_nodes = state._num_nodes

    def restore(self, state: OverlayState) -> None:
        state._members = self._members
        state._memberships = self._memberships
        state._num_edges = self._num_edges
        state._num_nodes = self._num_nodes

"""The patch-vs-rebuild decision — one heuristic, shared by every caller.

Incrementally patching an s-line graph costs the two-hop volume of the
*dirty frontier* (changed hyperedges plus whatever they reach through
shared vertices), while a from-scratch rebuild costs the two-hop volume
of the whole hypergraph.  For small deltas patching wins by orders of
magnitude; past a crossover it degenerates into a rebuild that also pays
the old-edge filtering.  The crossover is workload-dependent, but a
dirty-fraction threshold captures it well in practice (and is what the
``bench_dynamic_updates`` sweep calibrates).

Every layer that faces the decision — the service's ``update`` op
patching live cache entries, :class:`~repro.dynamic.incremental
.IncrementalSLineGraph` maintaining materialized graphs, and
``NWHypergraph.refresh_linegraphs`` refreshing its memo — routes through
:func:`decide_patch_or_rebuild` so the cost heuristic lives in exactly
one place.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_PATCH_THRESHOLD",
    "decide_patch_or_rebuild",
    "should_patch",
]

#: patch while the dirty fraction is at or below this (rebuild beyond);
#: calibrated so batches ≤ 1% of hyperedges always ride the patch path
#: with a wide margin (see benchmarks/bench_dynamic_updates.py)
DEFAULT_PATCH_THRESHOLD = 0.10


def decide_patch_or_rebuild(
    num_dirty: int,
    num_vertices: int,
    threshold: float = DEFAULT_PATCH_THRESHOLD,
) -> str:
    """``'patch'`` or ``'rebuild'`` for a delta of ``num_dirty`` vertices.

    ``num_vertices`` is the line-graph vertex space (hyperedges for
    ``over_edges=True``, hypernodes otherwise).  An empty delta is a
    trivial patch; an empty graph is a trivial rebuild.
    """
    if num_dirty < 0:
        raise ValueError("num_dirty must be >= 0")
    if num_dirty == 0:
        return "patch"
    if num_vertices <= 0:
        return "rebuild"
    return "patch" if num_dirty / num_vertices <= threshold else "rebuild"


def should_patch(
    num_dirty: int,
    num_vertices: int,
    threshold: float = DEFAULT_PATCH_THRESHOLD,
) -> bool:
    """Boolean form of :func:`decide_patch_or_rebuild`."""
    return decide_patch_or_rebuild(num_dirty, num_vertices, threshold) == "patch"

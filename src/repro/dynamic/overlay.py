"""Overlay incidence state — a mutable view over a frozen base hypergraph.

The paper's index sets are immutable by design (§III-B): every CSR is
built once and never edited.  The dynamic layer therefore keeps the
frozen :class:`~repro.structures.biadjacency.BiAdjacency` base untouched
and layers two small dictionaries over it — current members per *touched*
hyperedge and current memberships per *touched* hypernode.  Lookups
resolve overlay-first, base-second, so the cost of reading the state is
proportional to what changed, never to the whole graph.

Both incidence directions are maintained together (the same mutual
indexing invariant ``BiAdjacency`` guarantees for the frozen case), which
is what lets the delta counting kernels walk edge → node → edge without
ever materializing a full CSR of the mutated state.  ``dual()`` returns
the node-side view of the same state, so the s-clique (``over_edges=False``)
patching path reuses the identical kernels.

All arrays handed out are sorted unique ``int64`` — the contract of the
s-overlap kernels (:func:`repro.linegraph.common.intersect_count_sorted`
and friends).
"""

from __future__ import annotations

import numpy as np

from repro.structures.biadjacency import BiAdjacency

__all__ = ["OverlayState"]

_EMPTY = np.empty(0, dtype=np.int64)


def _insert_sorted(arr: np.ndarray, value: int) -> np.ndarray:
    """Insert ``value`` into a sorted unique array (no-op if present)."""
    pos = int(np.searchsorted(arr, value))
    if pos < arr.size and arr[pos] == value:
        return arr
    return np.insert(arr, pos, value)


def _delete_sorted(arr: np.ndarray, value: int) -> np.ndarray | None:
    """Remove ``value`` from a sorted unique array; ``None`` if absent."""
    pos = int(np.searchsorted(arr, value))
    if pos >= arr.size or arr[pos] != value:
        return None
    return np.delete(arr, pos)


class OverlayState:
    """Mutable incidence view: frozen ``BiAdjacency`` base + touched rows.

    Parameters
    ----------
    base:
        The frozen bi-adjacency snapshot under the overlay.
    num_edges, num_nodes:
        Current cardinalities (grow as mutations add edges/nodes; start
        at the base's).
    """

    def __init__(self, base: BiAdjacency) -> None:
        self._base = base
        self._members: dict[int, np.ndarray] = {}
        self._memberships: dict[int, np.ndarray] = {}
        self._num_edges = base.num_hyperedges()
        self._num_nodes = base.num_hypernodes()

    # -- cardinality ---------------------------------------------------------
    def num_edges(self) -> int:
        return self._num_edges

    def num_nodes(self) -> int:
        return self._num_nodes

    def num_touched(self) -> tuple[int, int]:
        """``(touched_edges, touched_nodes)`` — the overlay's footprint."""
        return (len(self._members), len(self._memberships))

    @property
    def base(self) -> BiAdjacency:
        return self._base

    # -- lookups (overlay-first) ---------------------------------------------
    def members(self, e: int) -> np.ndarray:
        """Hypernodes of hyperedge ``e`` (sorted unique)."""
        got = self._members.get(e)
        if got is not None:
            return got
        if e < self._base.num_hyperedges():
            return self._base.members(e)
        if e < self._num_edges:  # freshly added, then fully emptied
            return _EMPTY
        raise IndexError(f"hyperedge {e} out of range [0, {self._num_edges})")

    def memberships(self, v: int) -> np.ndarray:
        """Hyperedges incident on hypernode ``v`` (sorted unique)."""
        got = self._memberships.get(v)
        if got is not None:
            return got
        if v < self._base.num_hypernodes():
            return self._base.memberships(v)
        if v < self._num_nodes:
            return _EMPTY
        raise IndexError(f"hypernode {v} out of range [0, {self._num_nodes})")

    def edge_size(self, e: int) -> int:
        return int(self.members(e).size)

    def node_degree(self, v: int) -> int:
        return int(self.memberships(v).size)

    # -- mutation primitives (the DynamicHypergraph applies through these) ---
    def _grow_nodes(self, max_node: int) -> None:
        if max_node >= self._num_nodes:
            self._num_nodes = max_node + 1

    def add_edge(self, members) -> int:
        """Append a hyperedge with the given members; returns its new ID."""
        e = self._num_edges
        self._num_edges += 1
        mem = np.unique(np.asarray(list(members), dtype=np.int64))
        if mem.size and mem[0] < 0:
            raise ValueError("hypernode IDs must be non-negative")
        self._members[e] = mem
        if mem.size:
            self._grow_nodes(int(mem[-1]))
        for v in mem.tolist():
            self._memberships[v] = _insert_sorted(self.memberships(v), e)
        return e

    def remove_edge(self, e: int) -> np.ndarray:
        """Tombstone hyperedge ``e`` (ID retained, members dropped).

        Returns the members it had; raises ``ValueError`` when ``e`` is
        out of range or already empty.
        """
        if not 0 <= e < self._num_edges:
            raise ValueError(
                f"hyperedge {e} out of range [0, {self._num_edges})"
            )
        mem = self.members(e)
        if mem.size == 0:
            raise ValueError(f"hyperedge {e} is already empty")
        for v in mem.tolist():
            shrunk = _delete_sorted(self.memberships(v), e)
            if shrunk is not None:
                self._memberships[v] = shrunk
        self._members[e] = _EMPTY
        return mem

    def add_incidence(self, e: int, v: int) -> bool:
        """Insert membership ``(e, v)``; returns False when already present.

        ``e`` must name an existing (possibly tombstoned) hyperedge — new
        hyperedges come from :meth:`add_edge` so IDs stay dense.  ``v``
        may extend the hypernode space.
        """
        if not 0 <= e < self._num_edges:
            raise ValueError(
                f"hyperedge {e} out of range [0, {self._num_edges})"
            )
        if v < 0:
            raise ValueError("hypernode IDs must be non-negative")
        mem = self.members(e)
        grown = _insert_sorted(mem, v)
        if grown is mem:
            return False
        self._members[e] = grown
        self._grow_nodes(v)
        self._memberships[v] = _insert_sorted(self.memberships(v), e)
        return True

    def remove_incidence(self, e: int, v: int) -> None:
        """Delete membership ``(e, v)``; raises when it does not exist."""
        if not 0 <= e < self._num_edges:
            raise ValueError(
                f"hyperedge {e} out of range [0, {self._num_edges})"
            )
        mem = self.members(e)
        shrunk = _delete_sorted(mem, v)
        if shrunk is None:
            raise ValueError(f"incidence ({e}, {v}) does not exist")
        self._members[e] = shrunk
        ms = _delete_sorted(self.memberships(v), e)
        if ms is not None:
            self._memberships[v] = ms

    # -- views ---------------------------------------------------------------
    def dual(self) -> "OverlayDual":
        """The node-side view (roles of edges and nodes swapped)."""
        return OverlayDual(self)

    # -- materialization -----------------------------------------------------
    def incidence_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(row, col)`` COO incidence arrays (edge-sorted).

        Untouched hyperedges are sliced straight out of the base arrays;
        touched ones come from the overlay — so materialization costs
        O(incidences) with no per-edge Python loop over the clean part.
        """
        base = self._base
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        if base.num_hyperedges():
            base_row = np.repeat(
                np.arange(base.num_hyperedges(), dtype=np.int64),
                base.edge_sizes(),
            )
            base_col = base.edges.indices
            if self._members:
                touched = np.fromiter(
                    self._members, count=len(self._members), dtype=np.int64
                )
                keep = ~np.isin(base_row, touched)
                base_row, base_col = base_row[keep], base_col[keep]
            row_parts.append(base_row)
            col_parts.append(base_col)
        for e, mem in self._members.items():
            if mem.size:
                row_parts.append(np.full(mem.size, e, dtype=np.int64))
                col_parts.append(mem)
        if not row_parts:
            return _EMPTY, _EMPTY
        row = np.concatenate(row_parts)
        col = np.concatenate(col_parts)
        order = np.lexsort((col, row))
        return row[order], col[order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        te, tn = self.num_touched()
        return (
            f"OverlayState(edges={self._num_edges}, nodes={self._num_nodes}, "
            f"touched_edges={te}, touched_nodes={tn})"
        )


class OverlayDual:
    """Role-swapped read view of an :class:`OverlayState`.

    Presents hypernodes as "edges" and hyperedges as "nodes", so the
    delta-counting kernels (which only call :meth:`members` /
    :meth:`memberships` / the cardinalities) run unchanged on the dual —
    exactly how ``BiAdjacency.dual()`` feeds the s-clique construction.
    """

    __slots__ = ("_state",)

    def __init__(self, state: OverlayState) -> None:
        self._state = state

    def num_edges(self) -> int:
        return self._state.num_nodes()

    def num_nodes(self) -> int:
        return self._state.num_edges()

    def members(self, e: int) -> np.ndarray:
        return self._state.memberships(e)

    def memberships(self, v: int) -> np.ndarray:
        return self._state.members(v)

    def edge_size(self, e: int) -> int:
        return self._state.node_degree(e)

    def dual(self) -> OverlayState:
        return self._state

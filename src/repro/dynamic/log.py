"""Mutation records and the append-only batch log.

The dynamic layer never edits a frozen structure in place.  Every change
is a small, JSON-able :class:`Mutation` record; batches of records are
applied atomically by :class:`~repro.dynamic.hypergraph.DynamicHypergraph`
and remembered in a :class:`MutationLog` until ``compact()`` folds them
back into the CSR base.  Keeping the records serializable is what lets
the same vocabulary travel over the wire (the service's ``update`` op),
through the CLI (``repro update --ops``), and into tests.

Four mutation kinds cover the incidence-structure edits:

``add_edge``
    Append a new hyperedge; its ID is the next free one (returned in the
    apply result).  ``members`` lists its hypernode IDs.
``remove_edge``
    Tombstone a hyperedge: it keeps its ID but becomes empty, so every
    derived ID space (s-line graph vertices, component labels) stays
    aligned across updates.
``add_incidence`` / ``remove_incidence``
    Insert / delete one ``(edge, node)`` membership.

Hypernode IDs are created implicitly by referencing them (matching the
COO constructor of :class:`~repro.core.hypergraph.NWHypergraph`, where
``num_nodes`` is ``max ID + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["MUTATION_KINDS", "Mutation", "MutationLog"]

#: the mutation vocabulary, in wire spelling
MUTATION_KINDS = ("add_edge", "remove_edge", "add_incidence", "remove_incidence")


@dataclass(frozen=True)
class Mutation:
    """One incidence-structure edit (see module docstring for kinds)."""

    kind: str
    edge: int | None = None
    node: int | None = None
    members: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(
                f"unknown mutation kind {self.kind!r}; "
                f"expected one of {', '.join(MUTATION_KINDS)}"
            )
        if self.kind == "add_edge":
            if self.members is None:
                raise ValueError("add_edge requires 'members'")
            mem = tuple(int(v) for v in self.members)
            if any(v < 0 for v in mem):
                raise ValueError("hypernode IDs must be non-negative")
            object.__setattr__(self, "members", mem)
        elif self.kind == "remove_edge":
            if self.edge is None:
                raise ValueError("remove_edge requires 'edge'")
        else:  # add_incidence / remove_incidence
            if self.edge is None or self.node is None:
                raise ValueError(f"{self.kind} requires 'edge' and 'node'")
        if self.edge is not None:
            if int(self.edge) < 0:
                raise ValueError("hyperedge IDs must be non-negative")
            object.__setattr__(self, "edge", int(self.edge))
        if self.node is not None:
            if int(self.node) < 0:
                raise ValueError("hypernode IDs must be non-negative")
            object.__setattr__(self, "node", int(self.node))

    # -- wire format ---------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping) -> "Mutation":
        """Parse one wire-format record, e.g. ``{"op": "add_edge", ...}``.

        Accepts ``op`` (wire spelling) or ``kind`` for the discriminator;
        unknown fields are rejected so typos fail loudly instead of
        silently applying the wrong edit.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"mutation must be an object, got {payload!r}")
        data = dict(payload)
        kind = data.pop("op", None)
        if kind is None:
            kind = data.pop("kind", None)
        else:
            data.pop("kind", None)
        if kind is None:
            raise ValueError("mutation requires an 'op' field")
        unknown = set(data) - {"edge", "node", "members"}
        if unknown:
            raise ValueError(
                f"unknown mutation field(s) {sorted(unknown)!r} for op {kind!r}"
            )
        return cls(
            kind=kind,
            edge=data.get("edge"),
            node=data.get("node"),
            members=data.get("members"),
        )

    def to_dict(self) -> dict:
        """The wire-format record (JSON-safe, minimal fields)."""
        out: dict = {"op": self.kind}
        if self.edge is not None:
            out["edge"] = self.edge
        if self.node is not None:
            out["node"] = self.node
        if self.members is not None:
            out["members"] = list(self.members)
        return out


def as_mutation(record: "Mutation | Mapping") -> Mutation:
    """Coerce a record (already-parsed or wire dict) to a :class:`Mutation`."""
    if isinstance(record, Mutation):
        return record
    return Mutation.from_dict(record)


@dataclass
class LogBatch:
    """One applied batch: the version it produced and its records."""

    version: int
    mutations: tuple[Mutation, ...] = ()
    dirty_edges: frozenset[int] = frozenset()
    dirty_nodes: frozenset[int] = frozenset()

    # -- wire format (the WAL record payload, :mod:`repro.store.wal`) -------
    def to_wire(self) -> dict:
        """JSON-safe payload: the version and its mutation records.

        Dirty sets are derivable by replay, so they stay out of the
        durable format.
        """
        return {
            "version": int(self.version),
            "ops": [m.to_dict() for m in self.mutations],
        }

    @classmethod
    def from_wire(cls, payload: Mapping) -> "LogBatch":
        """Parse one WAL payload back into a batch (records validated)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"WAL payload must be an object, got {payload!r}")
        version = payload.get("version")
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"WAL payload has bad version {version!r}")
        return cls(
            version=version,
            mutations=tuple(parse_batch(payload.get("ops", []))),
        )


class MutationLog:
    """Append-only record of applied batches since the last compaction.

    The log is bookkeeping, not the source of truth — the overlay state
    already reflects every applied record.  It exists so callers can
    inspect what happened between snapshots (``pending_ops``), replay a
    session, and so ``compact()`` can report how much it folded.
    """

    def __init__(self) -> None:
        self._batches: list[LogBatch] = []

    def append(self, batch: LogBatch) -> None:
        self._batches.append(batch)

    def clear(self) -> list[LogBatch]:
        """Drop (and return) every pending batch — the compaction step."""
        out, self._batches = self._batches, []
        return out

    @property
    def num_batches(self) -> int:
        return len(self._batches)

    @property
    def num_ops(self) -> int:
        return sum(len(b.mutations) for b in self._batches)

    def dirty_edges(self) -> frozenset[int]:
        """Union of dirty hyperedges across pending batches."""
        out: set[int] = set()
        for b in self._batches:
            out |= b.dirty_edges
        return frozenset(out)

    def dirty_nodes(self) -> frozenset[int]:
        """Union of dirty hypernodes across pending batches."""
        out: set[int] = set()
        for b in self._batches:
            out |= b.dirty_nodes
        return frozenset(out)

    def __iter__(self) -> Iterator[LogBatch]:
        return iter(self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutationLog(batches={len(self)}, ops={self.num_ops})"


def parse_batch(records: Iterable[Mutation | Mapping] | Sequence) -> list[Mutation]:
    """Parse a batch of wire records, failing before anything is applied."""
    if isinstance(records, (str, bytes, Mapping)):
        raise ValueError("a mutation batch must be a list of records")
    out = [as_mutation(r) for r in records]
    if not out:
        raise ValueError(
            "a mutation batch must be non-empty (an empty batch would "
            "advance the version for a no-op)"
        )
    return out

"""``repro.dynamic`` — mutable hypergraphs with incremental maintenance.

The frozen index sets of the paper (§III-B) meet a mutation log:
:class:`DynamicHypergraph` layers batched add/remove edits over a frozen
:class:`~repro.core.hypergraph.NWHypergraph` snapshot with versioning
and compaction, and :class:`IncrementalSLineGraph` keeps materialized
s-line graphs in sync by patching only the delta — the queue-based
construction algorithms (Algorithms 1–2) seeded with the dirty frontier
instead of the full ID range.

See ``docs/DYNAMIC.md`` for the design (log semantics, compaction
policy, versioning) and the service's ``update`` op for the wire-level
integration.
"""

from .hypergraph import ApplyResult, DynamicHypergraph
from .incremental import (
    IncrementalSLineGraph,
    delta_frontier,
    delta_pair_counts,
    patch_linegraph,
    patch_with_builder,
)
from .log import MUTATION_KINDS, Mutation, MutationLog
from .overlay import OverlayState
from .policy import (
    DEFAULT_PATCH_THRESHOLD,
    decide_patch_or_rebuild,
    should_patch,
)

__all__ = [
    "ApplyResult",
    "DEFAULT_PATCH_THRESHOLD",
    "DynamicHypergraph",
    "IncrementalSLineGraph",
    "MUTATION_KINDS",
    "Mutation",
    "MutationLog",
    "OverlayState",
    "decide_patch_or_rebuild",
    "delta_frontier",
    "delta_pair_counts",
    "patch_linegraph",
    "patch_with_builder",
    "should_patch",
]

"""s-walks — the random-walk machinery behind the s-metrics ([2]).

Aksoy et al. define an *s-walk* as a sequence of hyperedges where
consecutive hyperedges share at least *s* hypernodes; every s-metric of
the paper is a statement about such walks.  This module makes them
first-class:

* :func:`is_s_walk` — validate a hyperedge sequence;
* :func:`random_s_walk` — generate a seeded random s-walk (lazy neighbor
  generation, no line-graph materialization);
* :func:`s_walk_visit_distribution` — empirical visit frequencies of many
  random s-walks, which converge to the s-line graph's random-walk
  stationary distribution (degree-proportional) — tested against the
  exact computation.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.s_traversal import s_neighbors_lazy
from repro.linegraph.common import intersect_count_sorted, resolve_incidence

__all__ = ["is_s_walk", "random_s_walk", "s_walk_visit_distribution"]


def is_s_walk(h, walk: list[int] | np.ndarray, s: int = 1) -> bool:
    """True iff consecutive hyperedges of ``walk`` all share ≥ s hypernodes.

    A single hyperedge is a (trivial) s-walk iff it has ≥ s members; the
    empty sequence is not a walk.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    walk = np.asarray(walk, dtype=np.int64)
    if walk.size == 0:
        return False
    edges, _, n_e, sizes = resolve_incidence(h)
    if np.any((walk < 0) | (walk >= n_e)):
        raise ValueError("walk contains out-of-range hyperedge IDs")
    if np.any(sizes[walk] < s):
        return False
    for a, b in zip(walk[:-1].tolist(), walk[1:].tolist()):
        if a == b:
            return False  # walks step between *distinct* hyperedges
        if intersect_count_sorted(edges[a], edges[b]) < s:
            return False
    return True


def random_s_walk(
    h,
    start: int,
    length: int,
    s: int = 1,
    seed: int = 0,
) -> np.ndarray:
    """A seeded random s-walk of up to ``length`` steps from ``start``.

    Each step moves to a uniformly random s-neighbor of the current
    hyperedge (lazy generation).  The walk stops early at a hyperedge with
    no s-neighbors; the returned array always begins with ``start``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    walk = [int(start)]
    current = int(start)
    for _ in range(length):
        nbrs = s_neighbors_lazy(h, current, s)
        if nbrs.size == 0:
            break
        current = int(nbrs[rng.integers(nbrs.size)])
        walk.append(current)
    return np.array(walk, dtype=np.int64)


def s_walk_visit_distribution(
    h,
    start: int,
    s: int = 1,
    num_walks: int = 64,
    length: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Empirical visit frequencies over ``num_walks`` random s-walks.

    For a connected component this estimates the stationary distribution
    of the simple random walk on ``L_s(H)`` — proportional to s-degree —
    which the tests verify against the exact degrees.
    """
    _, _, n_e, _ = resolve_incidence(h)
    visits = np.zeros(n_e, dtype=np.int64)
    for w in range(num_walks):
        walk = random_s_walk(h, start, length, s, seed=seed + w)
        np.add.at(visits, walk, 1)
    total = visits.sum()
    return visits / total if total else visits.astype(np.float64)

"""``SLineGraph`` — s-line graph handle exposing every ``s_*`` query.

The object returned by ``NWHypergraph.s_linegraph`` (Listing 5).  Vertices
are the *original hyperedge IDs* (or hypernode IDs when built with
``edges=False``); an edge joins two IDs whose hyperedges share at least
``s`` hypernodes.  All metrics delegate to the graph substrate
(:mod:`repro.graph`) on the symmetrized CSR — the "use any graph algorithm
on the approximation" workflow the paper advocates.

Conventions (documented per query):

* hyperedges that s-intersect nothing are **isolated vertices**; they are
  excluded from ``s_connected_components`` unless
  ``return_singletons=True``;
* ``s_distance`` returns ``-1`` for unreachable pairs;
* centralities follow the conventions of :mod:`repro.graph.paths` /
  :mod:`repro.graph.betweenness` (networkx-compatible).
"""

from __future__ import annotations

import numpy as np

from repro.graph.betweenness import betweenness_centrality
from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.graph.kcore import core_number
from repro.graph.mis import maximal_independent_set
from repro.graph.pagerank import pagerank
from repro.graph.paths import (
    closeness_centrality,
    eccentricity,
    harmonic_closeness_centrality,
)
from repro.graph.sssp import dijkstra
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR
from repro.structures.edgelist import EdgeList

__all__ = ["SLineGraph"]


class SLineGraph:
    """A materialized s-line (or s-clique) graph with metric queries."""

    def __init__(self, el: EdgeList, s: int, over_edges: bool = True) -> None:
        self.s = int(s)
        self.over_edges = bool(over_edges)
        self.edgelist = el
        self.graph = CSR.from_edgelist(
            el.symmetrize(), num_targets=el.num_vertices()
        )

    # -- structure -----------------------------------------------------------
    def num_vertices(self) -> int:
        """Vertex-space size — every original hyperedge ID, isolated or not."""
        return self.graph.num_vertices()

    def num_edges(self) -> int:
        """Number of undirected s-line edges."""
        return self.edgelist.num_edges()

    def s_neighbors(self, v: int) -> np.ndarray:
        """Hyperedges sharing ≥ s hypernodes with ``v`` (Listing 5)."""
        return self.graph[v].copy()

    def s_degree(self, v: int) -> int:
        """Number of s-neighbors of ``v``."""
        return self.graph.degree(v)

    def non_isolated(self) -> np.ndarray:
        """Vertices with at least one s-neighbor."""
        return np.flatnonzero(self.graph.degrees() > 0)

    # -- connectivity ------------------------------------------------------------
    def s_connected_components(
        self,
        return_singletons: bool = False,
        runtime: ParallelRuntime | None = None,
    ) -> list[np.ndarray]:
        """Connected components as arrays of hyperedge IDs.

        Isolated vertices (no s-neighbors) are omitted unless
        ``return_singletons`` — matching HyperNetX/nwhy semantics where a
        hyperedge with no s-overlaps is not an s-component.
        """
        labels = connected_components(self.graph, runtime=runtime)
        comps: dict[int, list[int]] = {}
        for v, lab in enumerate(labels.tolist()):
            comps.setdefault(lab, []).append(v)
        out = [
            np.array(sorted(members), dtype=np.int64)
            for members in comps.values()
            if len(members) > 1 or return_singletons
        ]
        out.sort(key=lambda a: int(a[0]))
        return out

    def is_s_connected(self) -> bool:
        """True iff all non-isolated vertices form one component (and exist).

        The Listing 5 ``is_s_connected`` query: does the s-line graph hang
        together?  Isolated hyperedges are ignored; an s-line graph with no
        edges at all is not connected.
        """
        live = self.non_isolated()
        if live.size == 0:
            return False
        labels = connected_components(self.graph)
        return bool(np.unique(labels[live]).size == 1)

    # -- distances --------------------------------------------------------------------
    def _check_vertex(self, v: int, name: str = "vertex") -> None:
        if not 0 <= v < self.num_vertices():
            raise ValueError(
                f"{name} {v} out of range [0, {self.num_vertices()})"
            )

    def s_distance(self, src: int, dest: int) -> int:
        """Hop distance in the s-line graph; ``-1`` if unreachable."""
        self._check_vertex(src, "src")
        self._check_vertex(dest, "dest")
        dist, _ = bfs_top_down(self.graph, src)
        return int(dist[dest])

    def s_path(self, src: int, dest: int) -> list[int]:
        """One shortest s-walk (as hyperedge IDs); ``[]`` if unreachable."""
        self._check_vertex(src, "src")
        self._check_vertex(dest, "dest")
        dist, parent = bfs_top_down(self.graph, src)
        if dist[dest] < 0:
            return []
        path = [int(dest)]
        while path[-1] != src:
            path.append(int(parent[path[-1]]))
        path.reverse()
        return path

    def s_diameter(self) -> int:
        """Largest eccentricity among non-isolated vertices (0 if none)."""
        live = self.non_isolated()
        if live.size == 0:
            return 0
        return int(self.s_eccentricity(live).max())

    # -- centralities -------------------------------------------------------------------
    def s_betweenness_centrality(
        self,
        normalized: bool = True,
        weighted: bool = False,
        runtime: ParallelRuntime | None = None,
    ) -> np.ndarray:
        """Brandes betweenness on the s-line graph (Listing 5).

        ``weighted=True`` treats stronger overlaps as shorter edges
        (``1 / overlap`` lengths, the ``s_sssp`` convention) and runs the
        Dijkstra-ordered Brandes variant.
        """
        if weighted:
            from repro.graph.betweenness import (
                betweenness_centrality_weighted,
            )

            inv = CSR(
                self.graph.indptr,
                self.graph.indices,
                None
                if self.graph.weights is None
                else 1.0 / self.graph.weights,
                num_targets=self.graph.num_targets(),
                sorted_rows=True,
            )
            return betweenness_centrality_weighted(inv, normalized=normalized)
        return betweenness_centrality(
            self.graph, normalized=normalized, runtime=runtime
        )

    def s_closeness_centrality(
        self,
        v: int | None = None,
        runtime: ParallelRuntime | None = None,
    ) -> np.ndarray | float:
        """Closeness (Wasserman–Faust); scalar when ``v`` is given."""
        if v is not None:
            return float(
                closeness_centrality(self.graph, np.array([v]))[0]
            )
        return closeness_centrality(self.graph, runtime=runtime)

    def s_harmonic_closeness_centrality(
        self,
        v: int | None = None,
        normalized: bool = True,
        runtime: ParallelRuntime | None = None,
    ) -> np.ndarray | float:
        """Harmonic closeness; scalar when ``v`` is given."""
        if v is not None:
            return float(
                harmonic_closeness_centrality(
                    self.graph, np.array([v]), normalized=normalized
                )[0]
            )
        return harmonic_closeness_centrality(
            self.graph, normalized=normalized, runtime=runtime
        )

    def s_eccentricity(
        self,
        v: int | np.ndarray | None = None,
        runtime: ParallelRuntime | None = None,
    ) -> np.ndarray | float:
        """Eccentricity within each vertex's component; scalar for one ``v``."""
        if v is None:
            return eccentricity(self.graph, runtime=runtime)
        if np.isscalar(v):
            return float(eccentricity(self.graph, np.array([v]))[0])
        return eccentricity(self.graph, np.asarray(v, dtype=np.int64))

    # -- extended s-metrics (§V staples: PageRank, k-core, MIS, SSSP) --------
    def s_pagerank(
        self,
        damping: float = 0.85,
        tol: float = 1e-10,
        runtime: ParallelRuntime | None = None,
    ) -> np.ndarray:
        """PageRank over the s-line graph (importance among hyperedges)."""
        return pagerank(self.graph, damping=damping, tol=tol, runtime=runtime)

    def s_core_number(
        self, runtime: ParallelRuntime | None = None
    ) -> np.ndarray:
        """k-core number per hyperedge: depth inside overlap-dense clusters."""
        return core_number(self.graph, runtime=runtime)

    def s_maximal_independent_set(
        self, seed: int = 0, runtime: ParallelRuntime | None = None
    ) -> np.ndarray:
        """A maximal set of pairwise non-s-overlapping hyperedges."""
        return maximal_independent_set(self.graph, seed=seed, runtime=runtime)

    def s_sssp(self, src: int, weighted: bool = False) -> np.ndarray:
        """Distances from ``src`` to all hyperedges.

        ``weighted=False`` (default) counts s-walk hops; ``weighted=True``
        uses ``1 / overlap`` edge lengths, so heavily-overlapping steps are
        "shorter" — unreachable entries are ``inf`` (weighted) / ``-1``
        (unweighted).
        """
        if not weighted:
            dist, _ = bfs_top_down(self.graph, src)
            return dist
        inv = CSR(
            self.graph.indptr,
            self.graph.indices,
            None
            if self.graph.weights is None
            else 1.0 / self.graph.weights,
            num_targets=self.graph.num_targets(),
            sorted_rows=True,
        )
        dist, _ = dijkstra(inv, src)
        return dist

    # -- interop ---------------------------------------------------------------
    def s_adjacency_matrix(self, weighted: bool = True):
        """The symmetric adjacency of ``L_s`` as ``scipy.sparse.csr_matrix``.

        ``weighted=True`` keeps overlap sizes as entries; ``False`` gives a
        0/1 pattern matrix.
        """
        m = self.graph.to_scipy()
        if not weighted:
            m = m.copy()
            m.data[:] = 1.0
        return m

    def to_networkx(self):
        """Export as a ``networkx.Graph`` (overlaps as ``weight`` attrs).

        Requires networkx (an optional dependency; everything else in the
        framework works without it).
        """
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover - env without nx
            raise ImportError(
                "to_networkx() requires the optional networkx dependency"
            ) from exc
        G = nx.Graph()
        G.add_nodes_from(range(self.num_vertices()))
        el = self.edgelist
        if el.weights is None:
            G.add_edges_from(zip(el.src.tolist(), el.dst.tolist()))
        else:
            G.add_weighted_edges_from(
                zip(el.src.tolist(), el.dst.tolist(), el.weights.tolist())
            )
        return G

    # -- misc --------------------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "line" if self.over_edges else "clique"
        return (
            f"SLineGraph(s={self.s}, kind={kind}, "
            f"vertices={self.num_vertices()}, edges={self.num_edges()})"
        )

"""The s-metrics suite of Aksoy et al. [2] — aggregate hypergraph analytics.

The paper builds its approximate-analytics story on the s-walk framework
of "Hypernetwork science via high-order hypergraph walks" [2]: once an
s-line graph is materialized, a family of *s-measures* summarizes the
hypergraph's structure at connection strength s.  This module computes the
full report:

* component structure: number of s-components, size distribution, size of
  the largest;
* distance structure: s-diameter of the largest component, average
  s-distance within components;
* local structure: mean s-clustering coefficient, s-density (edges
  realized vs possible among non-isolated vertices);
* per-vertex s-degree distribution.

``s_metrics_report`` computes one :class:`SMetricsReport` per s in a
single ensemble pass over the hypergraph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.graph.triangles import clustering_coefficient
from repro.linegraph import linegraph_csr, slinegraph_ensemble
from repro.structures.csr import CSR

__all__ = [
    "SMetricsReport",
    "format_smetrics_table",
    "report_from_linegraph",
    "s_metrics_report",
]


@dataclass(frozen=True)
class SMetricsReport:
    """Aggregate s-measures of one s-line graph."""

    s: int
    num_vertices: int  # hyperedge count (vertex space of L_s)
    num_edges: int  # s-line edges
    num_isolated: int  # hyperedges with no s-neighbor
    num_components: int  # non-singleton s-components
    largest_component: int
    component_sizes: tuple[int, ...]  # descending, non-singleton
    diameter_largest: int  # s-diameter of the largest component
    avg_distance_largest: float  # mean pairwise s-distance inside it
    mean_clustering: float  # mean local clustering over non-isolated
    density: float  # realized / possible edges among non-isolated
    mean_s_degree: float  # over non-isolated vertices

    def summary(self) -> str:
        """One human-readable line per report (used by the CLI)."""
        return (
            f"s={self.s}: {self.num_edges} edges, "
            f"{self.num_components} components "
            f"(largest {self.largest_component}, "
            f"diameter {self.diameter_largest}), "
            f"isolated {self.num_isolated}, "
            f"clustering {self.mean_clustering:.3f}, "
            f"density {self.density:.4f}"
        )


#: Components larger than this estimate distance metrics from a seeded
#: sample of sources instead of all-pairs BFS (exact below the cap).
_EXACT_DISTANCE_CAP = 256


def report_from_linegraph(
    graph: CSR, s: int, seed: int = 0
) -> SMetricsReport:
    """Compute the s-measures of a materialized (symmetrized) s-line CSR.

    Distance metrics (diameter / average distance of the largest
    component) are exact up to :data:`_EXACT_DISTANCE_CAP` members and
    seeded-sample estimates beyond — the standard practice for these
    O(n·m) measures.
    """
    n = graph.num_vertices()
    degrees = graph.degrees()
    isolated = int((degrees == 0).sum())
    live = np.flatnonzero(degrees > 0)
    num_edges = graph.num_edges() // 2

    labels = connected_components(graph)
    live_labels = labels[live]
    sizes = (
        np.sort(np.unique(live_labels, return_counts=True)[1])[::-1]
        if live.size
        else np.empty(0, dtype=np.int64)
    )
    largest = int(sizes[0]) if sizes.size else 0

    diameter = 0
    avg_distance = 0.0
    if largest > 1:
        # identify the largest component's members
        big_label = _majority_label(live_labels)
        members = np.flatnonzero(labels == big_label)
        if members.size <= _EXACT_DISTANCE_CAP:
            sources = members
        else:
            rng = np.random.default_rng(seed)
            sources = rng.choice(
                members, size=_EXACT_DISTANCE_CAP, replace=False
            )
        dist_sum = 0
        pair_count = 0
        for v in sources.tolist():
            dist, _ = bfs_top_down(graph, v)
            reach = dist[members]
            diameter = max(diameter, int(reach.max()))
            dist_sum += int(reach.sum())
            pair_count += members.size - 1
        avg_distance = dist_sum / pair_count if pair_count else 0.0

    clustering = clustering_coefficient(graph)
    mean_clust = float(clustering[live].mean()) if live.size else 0.0
    possible = live.size * (live.size - 1) / 2
    density = num_edges / possible if possible else 0.0
    mean_deg = float(degrees[live].mean()) if live.size else 0.0

    return SMetricsReport(
        s=s,
        num_vertices=n,
        num_edges=num_edges,
        num_isolated=isolated,
        num_components=int(sizes.size),
        largest_component=largest,
        component_sizes=tuple(int(x) for x in sizes),
        diameter_largest=diameter,
        avg_distance_largest=avg_distance,
        mean_clustering=mean_clust,
        density=float(density),
        mean_s_degree=mean_deg,
    )


def _majority(arr: np.ndarray) -> int:
    values, counts = np.unique(arr, return_counts=True)
    return int(values[np.argmax(counts)])


def _majority_label(live_labels: np.ndarray) -> int:
    return _majority(live_labels)


def format_smetrics_table(reports: dict[int, SMetricsReport]) -> str:
    """Align a multi-s report dict as one text table (CLI ``--table``)."""
    from repro.bench.reporting import format_table

    rows = [
        (
            f"s={rep.s}",
            rep.num_edges,
            rep.num_components,
            rep.largest_component,
            rep.diameter_largest,
            f"{rep.avg_distance_largest:.2f}",
            f"{rep.mean_clustering:.3f}",
            rep.num_isolated,
        )
        for _, rep in sorted(reports.items())
    ]
    return format_table(
        ["s", "edges", "comps", "largest", "diam", "avg dist", "clust",
         "isolated"],
        rows,
    )


def s_metrics_report(h, s_values: list[int]) -> dict[int, SMetricsReport]:
    """Full s-measure reports for every s, one ensemble counting pass.

    ``h`` is a ``BiAdjacency`` or ``AdjoinGraph`` (anything the ensemble
    construction accepts).
    """
    ensemble = slinegraph_ensemble(h, list(s_values))
    return {
        s: report_from_linegraph(linegraph_csr(el), s)
        for s, el in ensemble.items()
    }

"""``NWHypergraph`` — the framework's user-facing hypergraph class.

Mirrors the pybind11 Python API of the paper (§III-E, Listing 5): construct
from parallel ``(row, col, weight)`` incidence arrays — ``row`` holding
hyperedge IDs and ``col`` hypernode IDs — then query degrees/sizes, build
s-line graphs (:class:`~repro.core.slinegraph.SLineGraph`), compute exact
BFS/CC on either internal representation, collapse duplicate
edges or nodes, and extract toplexes.

The class owns both internal representations (bi-adjacency and adjoin) and
builds each lazily, so representation-specific algorithms are one property
access away.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.algorithms.adjoinbfs import adjoinbfs
from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hyperbfs import hyperbfs
from repro.algorithms.hypercc import hypercc
from repro.algorithms.toplex import toplexes as _toplexes
from repro.linegraph import slinegraph_ensemble, to_two_graph
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

from .slinegraph import SLineGraph

__all__ = ["NWHypergraph"]


class NWHypergraph:
    """A hypergraph built from COO-style incidence arrays.

    Parameters
    ----------
    row:
        Hyperedge ID of each incidence.
    col:
        Hypernode ID of each incidence.
    weight:
        Optional per-incidence weight (defaults to 1s, as in the C++ API).
    num_edges, num_nodes:
        Cardinalities; default to max ID + 1.

    Duplicate ``(row, col)`` incidences are dropped at construction (the
    overlap-counting algorithms require set semantics for memberships).
    """

    def __init__(
        self,
        row: Sequence[int] | np.ndarray,
        col: Sequence[int] | np.ndarray,
        weight: Sequence[float] | np.ndarray | None = None,
        num_edges: int | None = None,
        num_nodes: int | None = None,
    ) -> None:
        el = BiEdgeList(row, col, weight, n0=num_edges, n1=num_nodes)
        self._el = el.deduplicate()
        self._bi: BiAdjacency | None = None
        self._adjoin: AdjoinGraph | None = None
        self._slg_memo: dict[tuple, SLineGraph] = {}

    # -- alternate constructors ------------------------------------------------
    @classmethod
    def from_hyperedge_lists(
        cls,
        members: Sequence[Sequence[int]],
        num_nodes: int | None = None,
    ) -> "NWHypergraph":
        """Build from a list of hyperedges, each a list of hypernode IDs."""
        row = [e for e, mem in enumerate(members) for _ in mem]
        col = [int(v) for mem in members for v in mem]
        return cls(row, col, num_edges=len(members), num_nodes=num_nodes)

    @classmethod
    def from_frozen(
        cls,
        el: BiEdgeList,
        biadjacency: BiAdjacency | None = None,
        adjoin: AdjoinGraph | None = None,
    ) -> "NWHypergraph":
        """Adopt an already-deduplicated incidence list without revalidating.

        The O(1) trusted-construction path used by :mod:`repro.store` warm
        restarts: ``el`` must already carry set-semantic (deduplicated)
        incidences, and any supplied ``biadjacency``/``adjoin`` structures
        must describe exactly ``el``.  Representations not supplied stay
        lazy as usual.
        """
        out = cls.__new__(cls)
        out._el = el
        out._bi = biadjacency
        out._adjoin = adjoin
        out._slg_memo = {}
        return out

    @classmethod
    def from_biadjacency(cls, h: BiAdjacency) -> "NWHypergraph":
        """Wrap an existing bi-adjacency structure."""
        src = np.repeat(
            np.arange(h.num_hyperedges(), dtype=np.int64), h.edge_sizes()
        )
        return cls(
            src,
            h.edges.indices,
            h.edges.weights,
            num_edges=h.num_hyperedges(),
            num_nodes=h.num_hypernodes(),
        )

    # -- raw arrays (pybind-style properties) ------------------------------------
    @property
    def row(self) -> np.ndarray:
        """Hyperedge ID per incidence (deduplicated, sorted by pair)."""
        return self._el.part0

    @property
    def col(self) -> np.ndarray:
        """Hypernode ID per incidence."""
        return self._el.part1

    @property
    def weights(self) -> np.ndarray | None:
        return self._el.weights

    # -- internal representations ---------------------------------------------------
    @property
    def biadjacency(self) -> BiAdjacency:
        """The two-index-set representation (built lazily, cached)."""
        if self._bi is None:
            self._bi = BiAdjacency.from_biedgelist(self._el)
        return self._bi

    @property
    def adjoin_graph(self) -> AdjoinGraph:
        """The one-index-set (adjoin) representation (lazy, cached)."""
        if self._adjoin is None:
            self._adjoin = AdjoinGraph.from_biedgelist(self._el)
        return self._adjoin

    def invalidate(self) -> None:
        """Drop every lazily cached derived structure.

        Escape hatch for callers that mutate the underlying incidence
        arrays in place (the supported workflow is immutable, but the
        arrays are reachable): clears the memoized s-line graphs and the
        lazy bi-adjacency/adjoin representations so the next access
        rebuilds from the incidence list.
        """
        self._bi = None
        self._adjoin = None
        self._slg_memo.clear()

    def refresh_linegraphs(
        self,
        dirty_edges,
        dirty_nodes=None,
        threshold: float | None = None,
        tracer=None,
        metrics=None,
    ) -> dict[tuple, str]:
        """Delta-aware alternative to :meth:`invalidate` after a mutation.

        Callers that edited the incidence arrays in place (or swapped
        ``_el`` for a mutated copy) and know *which* hyperedge /
        hypernode IDs changed can keep their memoized s-line graphs
        instead of dropping them: the lazy representations are rebuilt,
        and each memo entry is either **patched** — the stock queue-based
        builders seeded with the delta frontier
        (:func:`repro.dynamic.incremental.patch_with_builder`) — or
        dropped for lazy rebuild, per the same dirty-fraction policy the
        service's ``update`` op uses (:mod:`repro.dynamic.policy` — the
        cost heuristic lives in exactly one place).  IDs must be stable
        (removals tombstoned, additions appended), the contract
        :class:`~repro.dynamic.hypergraph.DynamicHypergraph` maintains.

        Returns ``{memo_key: 'patch' | 'rebuild'}`` per prior entry;
        weighted entries always rebuild (the mutation vocabulary is
        unweighted).
        """
        from repro.dynamic.incremental import patch_with_builder
        from repro.dynamic.policy import (
            DEFAULT_PATCH_THRESHOLD,
            decide_patch_or_rebuild,
        )

        if threshold is None:
            threshold = DEFAULT_PATCH_THRESHOLD
        old_memo = dict(self._slg_memo)
        self.invalidate()
        d_edges = frozenset(int(e) for e in dirty_edges)
        d_nodes = frozenset(int(v) for v in (dirty_nodes or ()))
        outcomes: dict[tuple, str] = {}
        for key, lg in old_memo.items():
            s, over_edges, algorithm, weighted = key
            dirty = d_edges if over_edges else d_nodes
            n = (
                self.number_of_edges()
                if over_edges
                else self.number_of_nodes()
            )
            how = decide_patch_or_rebuild(len(dirty), n, threshold)
            if (
                weighted
                or lg.edgelist.weights is None
                or n < lg.edgelist.num_vertices()
            ):
                how = "rebuild"
            if how == "patch":
                h = (
                    self.biadjacency
                    if over_edges
                    else self.biadjacency.dual()
                )
                algo = (
                    algorithm
                    if algorithm in ("queue_hashmap", "queue_intersection")
                    else "queue_hashmap"
                )
                el = patch_with_builder(
                    lg.edgelist, h, sorted(dirty), s,
                    algorithm=algo, tracer=tracer, metrics=metrics,
                )
                self._slg_memo[key] = SLineGraph(
                    el, s=s, over_edges=over_edges
                )
            outcomes[key] = how
        return outcomes

    # -- sizes / degrees ----------------------------------------------------------------
    def number_of_edges(self) -> int:
        return self._el.num_vertices(0)

    def number_of_nodes(self) -> int:
        return self._el.num_vertices(1)

    def degree(
        self,
        node: int,
        min_size: int | None = None,
        max_size: int | None = None,
    ) -> int:
        """Number of hyperedges incident on ``node``.

        ``min_size``/``max_size`` restrict the count to hyperedges whose
        cardinality lies in ``[min_size, max_size]`` — the filtered-degree
        query of the nwhy API (e.g. "in how many large collaborations does
        this author appear?").
        """
        memberships = self.biadjacency.memberships(node)
        if min_size is None and max_size is None:
            return int(memberships.size)
        sizes = self.edge_sizes()[memberships]
        keep = np.ones(sizes.size, dtype=bool)
        if min_size is not None:
            keep &= sizes >= min_size
        if max_size is not None:
            keep &= sizes <= max_size
        return int(keep.sum())

    def size(self, edge: int) -> int:
        """Number of hypernodes in hyperedge ``edge``."""
        return self.biadjacency.edges.degree(edge)

    def dim(self, edge: int) -> int:
        """Dimension of a hyperedge: ``size - 1`` (simplicial convention)."""
        return self.size(edge) - 1

    def degrees(self) -> np.ndarray:
        return self.biadjacency.node_degrees()

    def edge_sizes(self) -> np.ndarray:
        return self.biadjacency.edge_sizes()

    def edge_size_dist(self) -> dict[int, int]:
        """Histogram {size: count} over hyperedges."""
        sizes, counts = np.unique(self.edge_sizes(), return_counts=True)
        return dict(zip(sizes.tolist(), counts.tolist()))

    def node_degree_dist(self) -> dict[int, int]:
        """Histogram {degree: count} over hypernodes."""
        degs, counts = np.unique(self.degrees(), return_counts=True)
        return dict(zip(degs.tolist(), counts.tolist()))

    # -- incidence queries ------------------------------------------------------------------
    def edge_incidence(self, edge: int) -> np.ndarray:
        """Hypernodes of ``edge`` (sorted)."""
        return self.biadjacency.members(edge).copy()

    def node_incidence(self, node: int) -> np.ndarray:
        """Hyperedges joining ``node`` (sorted)."""
        return self.biadjacency.memberships(node).copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Hypernodes adjacent to ``node`` (sharing ≥ 1 hyperedge)."""
        bi = self.biadjacency
        out = np.unique(
            np.concatenate(
                [bi.members(int(e)) for e in bi.memberships(node)]
                or [np.empty(0, dtype=np.int64)]
            )
        )
        return out[out != node]

    def singletons(self) -> np.ndarray:
        """Hyperedges of size 1 whose only node belongs to no other edge."""
        bi = self.biadjacency
        size1 = np.flatnonzero(bi.edge_sizes() == 1)
        if size1.size == 0:
            return size1
        only_node = bi.edges.indices[bi.edges.indptr[size1]]
        return size1[bi.node_degrees()[only_node] == 1]

    # -- dual / collapse --------------------------------------------------------------------------
    def dual(self) -> "NWHypergraph":
        """The dual hypergraph ``H*`` (roles of nodes and edges swapped)."""
        out = NWHypergraph.__new__(NWHypergraph)
        out._el = self._el.swapped()
        out._bi = None
        out._adjoin = None
        out._slg_memo = {}
        return out

    def collapse_edges(self) -> tuple["NWHypergraph", dict[int, list[int]]]:
        """Merge duplicate hyperedges (identical member sets).

        Returns ``(collapsed, classes)`` where ``classes`` maps each
        representative's *new* edge ID to the sorted list of original edge
        IDs it stands for (the nwhy ``collapse_edges`` API).
        """
        bi = self.biadjacency
        groups: dict[tuple[int, ...], list[int]] = {}
        for e in range(self.number_of_edges()):
            groups.setdefault(tuple(bi.members(e).tolist()), []).append(e)
        reps = sorted(groups.values(), key=lambda g: g[0])
        row: list[int] = []
        col: list[int] = []
        classes: dict[int, list[int]] = {}
        for new_id, group in enumerate(reps):
            classes[new_id] = sorted(group)
            for v in bi.members(group[0]).tolist():
                row.append(new_id)
                col.append(v)
        collapsed = NWHypergraph(
            row, col, num_edges=len(reps), num_nodes=self.number_of_nodes()
        )
        return collapsed, classes

    def collapse_nodes(self) -> tuple["NWHypergraph", dict[int, list[int]]]:
        """Merge duplicate hypernodes (identical membership sets) — dual op."""
        dual_collapsed, classes = self.dual().collapse_edges()
        return dual_collapsed.dual(), classes

    def collapse_nodes_and_edges(
        self,
    ) -> tuple["NWHypergraph", dict[int, list[int]], dict[int, list[int]]]:
        """Collapse duplicate nodes, then duplicate edges (nwhy API).

        Node classes are reported in original node IDs; edge classes in
        original edge IDs (edges that become duplicates *because* their
        members collapsed are merged too, matching nwhy's semantics).
        Returns ``(collapsed, edge_classes, node_classes)``.
        """
        node_collapsed, node_classes = self.collapse_nodes()
        collapsed, edge_classes = node_collapsed.collapse_edges()
        return collapsed, edge_classes, node_classes

    # -- subhypergraphs ---------------------------------------------------------------------------------
    def restrict_to_edges(self, edge_ids) -> "NWHypergraph":
        """Subhypergraph over a hyperedge subset (IDs renumbered 0..k-1).

        The hypernode space is preserved (nodes keep their IDs, possibly
        becoming isolated) so results remain comparable to the original.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if edge_ids.size and (
            edge_ids.min() < 0 or edge_ids.max() >= self.number_of_edges()
        ):
            raise ValueError("edge id out of range")
        bi = self.biadjacency
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        for new_id, e in enumerate(edge_ids.tolist()):
            mem = bi.members(e)
            rows.append(np.full(mem.size, new_id, dtype=np.int64))
            cols.append(mem)
        return NWHypergraph(
            np.concatenate(rows) if rows else np.empty(0, np.int64),
            np.concatenate(cols) if cols else np.empty(0, np.int64),
            num_edges=edge_ids.size,
            num_nodes=self.number_of_nodes(),
        )

    def restrict_to_nodes(self, node_ids) -> "NWHypergraph":
        """Subhypergraph keeping only the given hypernodes (IDs renumbered).

        Hyperedges keep their IDs; incidences to dropped nodes vanish (so
        edges may shrink or empty out) — HyperNetX's restriction semantics.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size and (
            node_ids.min() < 0 or node_ids.max() >= self.number_of_nodes()
        ):
            raise ValueError("node id out of range")
        remap = np.full(self.number_of_nodes(), -1, dtype=np.int64)
        remap[node_ids] = np.arange(node_ids.size, dtype=np.int64)
        keep = remap[self.col] >= 0
        return NWHypergraph(
            self.row[keep],
            remap[self.col[keep]],
            num_edges=self.number_of_edges(),
            num_nodes=node_ids.size,
        )

    def toplex_reduction(self) -> tuple["NWHypergraph", np.ndarray]:
        """Keep only the maximal hyperedges; returns ``(reduced, toplex_ids)``.

        Node connectivity is preserved (every dominated edge is implied by
        a superset toplex) — the simplification use case of Algorithm 3.
        """
        tops = _toplexes(self.biadjacency)
        return self.restrict_to_edges(tops), tops

    # -- exact algorithms ------------------------------------------------------------------------------
    def toplexes(self) -> np.ndarray:
        """IDs of maximal hyperedges (paper Algorithm 3)."""
        return _toplexes(self.biadjacency)

    def connected_components(
        self,
        representation: str = "adjoin",
        algorithm: str = "afforest",
        runtime: ParallelRuntime | None = None,
        tracer=None,
        metrics=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact hypergraph CC; returns ``(edge_labels, node_labels)``.

        ``representation='adjoin'`` runs AdjoinCC (``algorithm`` selects the
        engine); ``'bipartite'`` runs HyperCC (label propagation).  Labels
        agree between the two — the framework invariant.
        ``tracer``/``metrics`` (:mod:`repro.obs`) are forwarded to the
        underlying algorithm; no-op when ``None``.
        """
        if representation == "adjoin":
            return adjoincc(
                self.adjoin_graph,
                algorithm,
                runtime=runtime,
                tracer=tracer,
                metrics=metrics,
            )
        if representation == "bipartite":
            return hypercc(
                self.biadjacency,
                runtime=runtime,
                tracer=tracer,
                metrics=metrics,
            )
        raise ValueError(f"unknown representation {representation!r}")

    def bfs(
        self,
        source: int,
        source_is_edge: bool = False,
        representation: str = "adjoin",
        runtime: ParallelRuntime | None = None,
        tracer=None,
        metrics=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact hypergraph BFS; returns ``(edge_dist, node_dist)`` in hops.

        ``tracer``/``metrics`` (:mod:`repro.obs`) are forwarded to the
        underlying algorithm; no-op when ``None``.
        """
        bound = (
            self.number_of_edges() if source_is_edge else self.number_of_nodes()
        )
        if not 0 <= source < bound:
            kind = "hyperedge" if source_is_edge else "hypernode"
            raise ValueError(
                f"{kind} source {source} out of range [0, {bound})"
            )
        if representation == "adjoin":
            return adjoinbfs(
                self.adjoin_graph,
                source,
                source_is_edge,
                runtime=runtime,
                tracer=tracer,
                metrics=metrics,
            )
        if representation == "bipartite":
            return hyperbfs(
                self.biadjacency,
                source,
                source_is_edge,
                direction="direction_optimizing",
                runtime=runtime,
                tracer=tracer,
                metrics=metrics,
            )
        raise ValueError(f"unknown representation {representation!r}")

    # -- distances (HyperNetX-style conveniences) ---------------------------------------------------------
    def edge_distance(self, src: int, dest: int, s: int = 1) -> int:
        """s-walk distance between two hyperedges (``-1`` unreachable).

        Computed lazily (no line-graph materialization).
        """
        from repro.algorithms.s_traversal import s_distance_lazy

        return s_distance_lazy(self.biadjacency, src, dest, s)

    def node_distance(self, src: int, dest: int, s: int = 1) -> int:
        """s-walk distance between two hypernodes (dual-side query).

        Two hypernodes are at distance 1 when they share ≥ s hyperedges —
        the clique-expansion metric for s = 1.
        """
        from repro.algorithms.s_traversal import s_distance_lazy

        return s_distance_lazy(self.biadjacency.dual(), src, dest, s)

    def diameter(self, kind: str = "node", s: int = 1) -> int:
        """Largest finite s-distance among hypernodes (or hyperedges).

        Follows HyperNetX conventions: computed within components (infinite
        pairs ignored); 0 when nothing is connected.  O(n · m) — intended
        for analysis-scale hypergraphs.
        """
        from repro.algorithms.s_traversal import s_bfs_lazy

        if kind == "edge":
            h = self.biadjacency
        elif kind == "node":
            h = self.biadjacency.dual()
        else:
            raise ValueError(f"kind must be 'node' or 'edge', got {kind!r}")
        best = 0
        for e in range(h.num_hyperedges()):
            dist = s_bfs_lazy(h, e, s)
            reach = dist[dist > 0]
            if reach.size:
                best = max(best, int(reach.max()))
        return best

    # -- approximations -----------------------------------------------------------------------------------
    def s_linegraph(  # repro: noqa-R005 — edges= is the deprecation shim itself (warns, tested)
        self,
        s: int = 1,
        over_edges: bool = True,
        algorithm: str = "hashmap",
        runtime: ParallelRuntime | None = None,
        weighted: bool = False,
        tracer=None,
        metrics=None,
        *,
        edges: bool | None = None,
    ) -> SLineGraph:
        """Build the s-line graph (``over_edges=True``) or s-clique graph.

        ``over_edges=False`` computes over the hypernode side — the s-line
        graph of the dual, the paper's s-clique graph (clique expansion at
        s=1).  The kwarg matches :attr:`SLineGraph.over_edges`; the old
        spelling ``edges=`` still works but emits a
        :class:`DeprecationWarning`.  ``weighted=True`` (requires incidence
        weights and the ``hashmap`` or ``matrix`` algorithm) emits weighted
        overlaps ``Σ w(e,v)·w(f,v)`` as edge weights; the ``s`` threshold
        stays on set overlap.  ``tracer``/``metrics`` (:mod:`repro.obs`)
        are forwarded to the construction algorithm; no-op when ``None``.

        Repeated calls with the same ``(s, over_edges, algorithm,
        weighted)`` return the **same** :class:`SLineGraph` instance —
        memoized on the hypergraph like the lazy
        ``biadjacency``/``adjoin_graph`` representations (every algorithm
        yields the identical canonical edge list, so the key may safely
        include the algorithm).  Calls carrying a ``runtime`` bypass the
        memo: they exist to *measure* construction, and a cache hit would
        skip the simulated schedule.  Memo hits emit no spans or counters
        (no construction work happened).  Use :meth:`invalidate` to drop
        everything memoized.
        """
        if edges is not None:
            warnings.warn(
                "s_linegraph(edges=...) is deprecated; use over_edges=...",
                DeprecationWarning,
                stacklevel=2,
            )
            over_edges = edges
        memo_key = (int(s), bool(over_edges), algorithm, bool(weighted))
        if runtime is None and memo_key in self._slg_memo:
            return self._slg_memo[memo_key]
        h = self.biadjacency if over_edges else self.biadjacency.dual()
        if weighted:
            if self.weights is None:
                raise ValueError(
                    "weighted s-line graphs require incidence weights"
                )
            from repro.linegraph import slinegraph_hashmap, slinegraph_matrix

            if algorithm == "hashmap":
                el = slinegraph_hashmap(
                    h, s, runtime=runtime, weighted=True,
                    tracer=tracer, metrics=metrics,
                )
            elif algorithm == "matrix":
                el = slinegraph_matrix(h, s, weighted=True)
            else:
                raise ValueError(
                    "weighted construction supports algorithm='hashmap' "
                    f"or 'matrix', not {algorithm!r}"
                )
        else:
            el = to_two_graph(
                h, s, algorithm=algorithm, runtime=runtime,
                tracer=tracer, metrics=metrics,
            )
        lg = SLineGraph(el, s=s, over_edges=over_edges)
        if runtime is None:
            self._slg_memo[memo_key] = lg
        return lg

    def s_linegraphs(  # repro: noqa-R005 — edges= is the deprecation shim itself (warns, tested)
        self,
        s_values: Sequence[int],
        over_edges: bool = True,
        runtime: ParallelRuntime | None = None,
        tracer=None,
        metrics=None,
        *,
        edges: bool | None = None,
    ) -> dict[int, SLineGraph]:
        """Ensemble construction: ``{s: SLineGraph}`` in one counting pass.

        Accepts the same ``over_edges``/``tracer``/``metrics`` trio as
        :meth:`s_linegraph` (and the same deprecated ``edges=`` spelling).
        """
        if edges is not None:
            warnings.warn(
                "s_linegraphs(edges=...) is deprecated; use over_edges=...",
                DeprecationWarning,
                stacklevel=2,
            )
            over_edges = edges
        h = self.biadjacency if over_edges else self.biadjacency.dual()
        ensemble = slinegraph_ensemble(
            h, list(s_values), runtime=runtime, tracer=tracer, metrics=metrics
        )
        return {
            s: SLineGraph(el, s=s, over_edges=over_edges)
            for s, el in ensemble.items()
        }

    def clique_expansion(self) -> SLineGraph:
        """The clique-expansion graph (s-clique graph at s = 1)."""
        return self.s_linegraph(1, over_edges=False)

    # -- misc -------------------------------------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NWHypergraph(edges={self.number_of_edges()}, "
            f"nodes={self.number_of_nodes()}, incidences={len(self._el)})"
        )

"""Incremental hypergraph construction — the mutable ingestion front end.

The array constructors of :class:`~repro.core.hypergraph.NWHypergraph` suit
bulk loading; interactive and streaming use wants incremental mutation.
``HypergraphBuilder`` buffers edits cheaply (Python lists of incidences)
and freezes into an immutable ``NWHypergraph`` — mirroring the
edge-list → indexed-structure split of the C++ design (Listing 1:
``biedgelist`` is the mutable form, ``biadjacency`` the frozen one).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .hypergraph import NWHypergraph

__all__ = ["HypergraphBuilder"]


class HypergraphBuilder:
    """Accumulate hyperedges / incidences, then :meth:`freeze`.

    IDs may be added out of order; cardinalities grow automatically.
    Duplicate incidences are tolerated (dropped at freeze, like the array
    constructor).
    """

    def __init__(self) -> None:
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._weights: list[float] = []
        self._any_weight = False
        self._num_edges = 0
        self._num_nodes = 0

    # -- mutation -----------------------------------------------------------
    def add_incidence(
        self, edge: int, node: int, weight: float = 1.0
    ) -> "HypergraphBuilder":
        """Record that ``node`` belongs to ``edge``; returns self (chainable)."""
        if edge < 0 or node < 0:
            raise ValueError("IDs must be non-negative")
        self._rows.append(int(edge))
        self._cols.append(int(node))
        self._weights.append(float(weight))
        if weight != 1.0:
            self._any_weight = True
        self._num_edges = max(self._num_edges, edge + 1)
        self._num_nodes = max(self._num_nodes, node + 1)
        return self

    def add_edge(
        self, members: Iterable[int], edge: int | None = None
    ) -> int:
        """Add a whole hyperedge; returns its ID (auto-assigned by default)."""
        eid = self._num_edges if edge is None else int(edge)
        members = list(members)
        for v in members:
            self.add_incidence(eid, int(v))
        if not members:  # still reserve the (empty) edge ID
            self._num_edges = max(self._num_edges, eid + 1)
        return eid

    def add_node(self, node: int | None = None) -> int:
        """Reserve a hypernode ID (possibly isolated); returns it."""
        nid = self._num_nodes if node is None else int(node)
        self._num_nodes = max(self._num_nodes, nid + 1)
        return nid

    def extend(
        self, rows: Iterable[int], cols: Iterable[int]
    ) -> "HypergraphBuilder":
        """Bulk-append parallel incidence arrays."""
        for e, v in zip(rows, cols):
            self.add_incidence(e, v)
        return self

    # -- introspection ----------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_incidences(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return self.num_incidences

    # -- freeze ------------------------------------------------------------------
    def freeze(self) -> NWHypergraph:
        """Materialize an immutable :class:`NWHypergraph` (builder reusable)."""
        return NWHypergraph(
            np.array(self._rows, dtype=np.int64),
            np.array(self._cols, dtype=np.int64),
            np.array(self._weights) if self._any_weight else None,
            num_edges=self._num_edges,
            num_nodes=self._num_nodes,
        )

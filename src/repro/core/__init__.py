"""The paper's primary contribution as a public API.

``NWHypergraph`` + ``SLineGraph`` reproduce the pybind11 ``nwhy`` Python
package surface (paper Listing 5) on top of the pure-Python substrates.
"""

from .builder import HypergraphBuilder
from .hypergraph import NWHypergraph
from .labeled import LabeledHypergraph
from .slinegraph import SLineGraph
from .spectral import fiedler_vector, hypergraph_laplacian, spectral_bipartition
from .smetrics import SMetricsReport, report_from_linegraph, s_metrics_report
from .swalks import is_s_walk, random_s_walk, s_walk_visit_distribution

__all__ = [
    "HypergraphBuilder",
    "LabeledHypergraph",
    "NWHypergraph",
    "SLineGraph",
    "SMetricsReport",
    "fiedler_vector",
    "hypergraph_laplacian",
    "spectral_bipartition",
    "report_from_linegraph",
    "is_s_walk",
    "random_s_walk",
    "s_metrics_report",
    "s_walk_visit_distribution",
]

"""Spectral hypergraph partitioning — the clique-expansion use case ([29]).

The paper's clique-expansion discussion cites Zien et al.'s multilevel
*spectral* hypergraph partitioning [29]: replace hyperedges with cliques,
then cut the resulting graph with the Fiedler vector.  This module
implements that workflow plus the smoother Zhou-style normalized
hypergraph Laplacian, both reduced to sparse symmetric eigenproblems
(``scipy.sparse.linalg.eigsh`` via shift-invert on the small end):

* :func:`hypergraph_laplacian` — Zhou's normalized Laplacian
  ``L = I − D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2}``;
* :func:`fiedler_vector` — second-smallest eigenpair of a Laplacian;
* :func:`spectral_bipartition` — sign-cut of the Fiedler vector into two
  hypernode clusters.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp
from scipy.sparse.linalg import eigsh

from repro.structures.biadjacency import BiAdjacency
from repro.structures.matrices import incidence_matrix

__all__ = [
    "hypergraph_laplacian",
    "fiedler_vector",
    "spectral_bipartition",
]


def hypergraph_laplacian(
    h: BiAdjacency, edge_weights: np.ndarray | None = None
) -> sp.csr_matrix:
    """Zhou's normalized hypergraph Laplacian over the hypernodes.

    ``edge_weights`` (default 1s) weight each hyperedge's contribution.
    Isolated hypernodes and empty hyperedges contribute identity rows /
    nothing respectively (their normalizations are defined as 0).
    """
    b = incidence_matrix(h)  # hypernodes × hyperedges, 0/1
    n, m = b.shape
    w = (
        np.ones(m)
        if edge_weights is None
        else np.asarray(edge_weights, dtype=np.float64)
    )
    if w.shape != (m,):
        raise ValueError(f"edge_weights must have shape ({m},)")
    edge_sizes = np.asarray(b.sum(axis=0)).ravel()
    node_deg = np.asarray((b @ sp.diags(w)).sum(axis=1)).ravel()
    inv_de = np.where(edge_sizes > 0, 1.0 / np.where(edge_sizes > 0,
                                                     edge_sizes, 1), 0.0)
    inv_sqrt_dv = np.where(node_deg > 0, 1.0 / np.sqrt(np.where(
        node_deg > 0, node_deg, 1)), 0.0)
    theta = (
        sp.diags(inv_sqrt_dv)
        @ b
        @ sp.diags(w * inv_de)
        @ b.T
        @ sp.diags(inv_sqrt_dv)
    )
    return sp.csr_matrix(sp.identity(n) - theta)


def fiedler_vector(
    laplacian: sp.spmatrix, seed: int = 0
) -> tuple[float, np.ndarray]:
    """``(lambda_2, v_2)`` of a symmetric PSD Laplacian.

    Deterministic given the seed (fixed eigsh starting vector); the sign
    is normalized so the first nonzero component is positive.
    """
    n = laplacian.shape[0]
    if n < 3:
        raise ValueError("need at least 3 vertices for a useful Fiedler cut")
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    vals, vecs = eigsh(laplacian, k=2, sigma=-1e-8, which="LM", v0=v0)
    order = np.argsort(vals)
    lam = float(vals[order[1]])
    vec = vecs[:, order[1]]
    nonzero = np.flatnonzero(np.abs(vec) > 1e-12)
    if nonzero.size and vec[nonzero[0]] < 0:
        vec = -vec
    return lam, vec


def spectral_bipartition(
    h: BiAdjacency,
    edge_weights: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Two-way hypernode partition: sign cut of the Fiedler vector ([29]).

    Returns an int array in {0, 1} per hypernode.  The split threshold is
    the vector's median rather than 0, which balances the parts on
    near-regular hypergraphs (the standard practical choice).
    """
    lap = hypergraph_laplacian(h, edge_weights)
    _, vec = fiedler_vector(lap, seed=seed)
    threshold = float(np.median(vec))
    labels = (vec > threshold).astype(np.int64)
    # degenerate median (many ties): fall back to sign cut
    if labels.min() == labels.max():
        labels = (vec > 0).astype(np.int64)
    return labels

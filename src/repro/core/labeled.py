"""Labeled hypergraphs — arbitrary hashable edge/node names.

The integer-ID core is the right substrate for algorithms, but real data
names its entities: authors, papers, communities.  HyperNetX (which the
paper's §V notes can delegate s-line construction to NWHy) works in
exactly this dict-of-named-edges shape.  ``LabeledHypergraph`` wraps an
:class:`~repro.core.hypergraph.NWHypergraph` with bidirectional label
encodings and relabels every query's inputs/outputs, so users never touch
raw IDs:

    lh = LabeledHypergraph.from_dict({
        "paper1": ["alice", "bob"],
        "paper2": ["bob", "carol", "dave"],
    })
    lh.s_neighbors("paper1", s=1)      # -> ["paper2"]

Label order is insertion order (edges) / first-appearance order (nodes),
so encodings are deterministic.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from .hypergraph import NWHypergraph

__all__ = ["LabeledHypergraph"]


class _Encoder:
    """Bidirectional label ↔ dense-ID mapping (insertion-ordered)."""

    __slots__ = ("_to_id", "_labels")

    def __init__(self) -> None:
        self._to_id: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []

    def encode(self, label: Hashable) -> int:
        try:
            return self._to_id[label]
        except KeyError:
            ident = len(self._labels)
            self._to_id[label] = ident
            self._labels.append(label)
            return ident

    def lookup(self, label: Hashable) -> int:
        try:
            return self._to_id[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r}") from None

    def decode(self, ident: int) -> Hashable:
        return self._labels[ident]

    def decode_many(self, ids: Iterable[int]) -> list[Hashable]:
        return [self._labels[int(i)] for i in ids]

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> list[Hashable]:
        return list(self._labels)


class LabeledHypergraph:
    """A hypergraph over arbitrary hashable edge and node labels."""

    def __init__(
        self, edges: Mapping[Hashable, Sequence[Hashable]]
    ) -> None:
        self._edge_enc = _Encoder()
        self._node_enc = _Encoder()
        rows: list[int] = []
        cols: list[int] = []
        for edge_label, members in edges.items():
            e = self._edge_enc.encode(edge_label)
            for node_label in members:
                rows.append(e)
                cols.append(self._node_enc.encode(node_label))
        self.hypergraph = NWHypergraph(
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            num_edges=len(self._edge_enc),
            num_nodes=len(self._node_enc),
        )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_dict(
        cls, edges: Mapping[Hashable, Sequence[Hashable]]
    ) -> "LabeledHypergraph":
        """Build from ``{edge_name: [node_name, ...]}`` (HyperNetX shape)."""
        return cls(edges)

    def to_dict(self) -> dict[Hashable, list[Hashable]]:
        """Back to the dict-of-named-edges shape."""
        return {
            self._edge_enc.decode(e): self._node_enc.decode_many(
                self.hypergraph.edge_incidence(e)
            )
            for e in range(self.hypergraph.number_of_edges())
        }

    # -- label access ------------------------------------------------------------
    @property
    def edge_labels(self) -> list[Hashable]:
        return self._edge_enc.labels

    @property
    def node_labels(self) -> list[Hashable]:
        return self._node_enc.labels

    def edge_id(self, label: Hashable) -> int:
        """Dense ID of an edge label (KeyError if unknown)."""
        return self._edge_enc.lookup(label)

    def node_id(self, label: Hashable) -> int:
        return self._node_enc.lookup(label)

    # -- labeled queries -------------------------------------------------------------
    def members(self, edge: Hashable) -> list[Hashable]:
        """Node labels of a named hyperedge."""
        ids = self.hypergraph.edge_incidence(self._edge_enc.lookup(edge))
        return self._node_enc.decode_many(ids)

    def memberships(self, node: Hashable) -> list[Hashable]:
        """Edge labels a named node belongs to."""
        ids = self.hypergraph.node_incidence(self._node_enc.lookup(node))
        return self._edge_enc.decode_many(ids)

    def degree(self, node: Hashable, **kwargs) -> int:
        return self.hypergraph.degree(self._node_enc.lookup(node), **kwargs)

    def size(self, edge: Hashable) -> int:
        return self.hypergraph.size(self._edge_enc.lookup(edge))

    def neighbors(self, node: Hashable) -> list[Hashable]:
        ids = self.hypergraph.neighbors(self._node_enc.lookup(node))
        return self._node_enc.decode_many(ids)

    def toplexes(self) -> list[Hashable]:
        return self._edge_enc.decode_many(self.hypergraph.toplexes())

    # -- labeled s-analytics ----------------------------------------------------------
    def s_neighbors(self, edge: Hashable, s: int = 1) -> list[Hashable]:
        """Edge labels sharing ≥ s nodes with ``edge`` (lazy query)."""
        from repro.algorithms.s_traversal import s_neighbors_lazy

        ids = s_neighbors_lazy(
            self.hypergraph.biadjacency, self._edge_enc.lookup(edge), s
        )
        return self._edge_enc.decode_many(ids)

    def s_distance(self, src: Hashable, dest: Hashable, s: int = 1) -> int:
        """s-distance between two named edges (``-1`` if unreachable)."""
        from repro.algorithms.s_traversal import s_distance_lazy

        return s_distance_lazy(
            self.hypergraph.biadjacency,
            self._edge_enc.lookup(src),
            self._edge_enc.lookup(dest),
            s,
        )

    def s_connected_components(
        self, s: int = 1, return_singletons: bool = False
    ) -> list[list[Hashable]]:
        """s-components as lists of edge labels."""
        lg = self.hypergraph.s_linegraph(s)
        return [
            self._edge_enc.decode_many(comp)
            for comp in lg.s_connected_components(
                return_singletons=return_singletons
            )
        ]

    def s_betweenness_centrality(
        self, s: int = 1, normalized: bool = True
    ) -> dict[Hashable, float]:
        """Betweenness per edge label."""
        bc = self.hypergraph.s_linegraph(s).s_betweenness_centrality(
            normalized=normalized
        )
        return {
            self._edge_enc.decode(e): float(bc[e]) for e in range(bc.size)
        }

    def connected_components(self) -> list[dict[str, list[Hashable]]]:
        """Exact hypergraph components as labeled edge/node groups."""
        e_lab, n_lab = self.hypergraph.connected_components()
        groups: dict[int, dict[str, list[Hashable]]] = {}
        for e, lab in enumerate(e_lab.tolist()):
            groups.setdefault(lab, {"edges": [], "nodes": []})["edges"].append(
                self._edge_enc.decode(e)
            )
        for v, lab in enumerate(n_lab.tolist()):
            groups.setdefault(lab, {"edges": [], "nodes": []})["nodes"].append(
                self._node_enc.decode(v)
            )
        return [groups[k] for k in sorted(groups)]

    # -- misc ----------------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledHypergraph(edges={len(self._edge_enc)}, "
            f"nodes={len(self._node_enc)})"
        )

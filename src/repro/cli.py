"""Command-line interface: ``python -m repro <command> ...``.

Thin argparse front end over the library, covering the operational loop a
framework user runs from a shell: inspect a hypergraph file, convert
between formats, run exact CC/BFS, construct s-line graphs, extract
toplexes, and regenerate the paper's tables.

Supported file formats (selected by extension): ``.mtx`` (MatrixMarket,
Listing 2's reader), ``.hygra``/``.adj`` (Hygra's AdjacencyHypergraph),
and ``.csv`` (incidence tables).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.algorithms.toplex import toplexes
from repro.core.hypergraph import NWHypergraph
from repro.io.datasets import dataset_stats, load, table1
from repro.io.generators import (
    community_hypergraph,
    powerlaw_hypergraph,
    uniform_random_hypergraph,
)
from repro.io.json_io import jsonify as _jsonify
from repro.io.loader import read_any, write_any
from repro.io.mmio import read_mm, write_mm
from repro.structures.edgelist import BiEdgeList

__all__ = ["main", "build_parser"]


def _read(path: str) -> BiEdgeList:
    try:
        return read_any(path)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _write(path: str, el: BiEdgeList) -> None:
    try:
        write_any(path, el)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _hypergraph(path: str) -> NWHypergraph:
    el = _read(path)
    return NWHypergraph(
        el.part0, el.part1, el.weights,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


def _dump_json(payload) -> None:
    """Emit one JSON document; ``_jsonify`` strips numpy scalar/array types
    first so ``np.int64`` histogram keys and ``np.float64`` means never
    raise ``TypeError`` inside ``json.dumps``."""
    print(json.dumps(_jsonify(payload), indent=2, sort_keys=True))


def cmd_stats(args: argparse.Namespace) -> int:
    el = _read(args.file)
    stats = dataset_stats(Path(args.file).stem, el)
    if args.json:
        hg = _hypergraph(args.file)
        payload = dict(_jsonify(stats))
        payload["edge_size_dist"] = hg.edge_size_dist()
        payload["node_degree_dist"] = hg.node_degree_dist()
        _dump_json(payload)
        return 0
    print(f"hypergraph      {stats.name}")
    print(f"hypernodes      {stats.num_nodes}")
    print(f"hyperedges      {stats.num_edges}")
    print(f"avg node degree {stats.avg_node_degree:.2f}")
    print(f"avg edge size   {stats.avg_edge_size:.2f}")
    print(f"max node degree {stats.max_node_degree}")
    print(f"max edge size   {stats.max_edge_size}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    _write(args.output, _read(args.input))
    print(f"wrote {args.output}")
    return 0


def cmd_cc(args: argparse.Namespace) -> int:
    hg = _hypergraph(args.file)
    edge_labels, node_labels = hg.connected_components(
        representation=args.representation, algorithm=args.algorithm
    )
    combined = np.unique(np.concatenate([edge_labels, node_labels]))
    print(f"components      {combined.size}")
    sizes = np.bincount(
        np.searchsorted(combined, np.concatenate([edge_labels, node_labels]))
    )
    print(f"largest         {int(sizes.max())} entities")
    print(f"singletons      {int((sizes == 1).sum())}")
    return 0


def cmd_bfs(args: argparse.Namespace) -> int:
    hg = _hypergraph(args.file)
    edge_dist, node_dist = hg.bfs(
        args.source, source_is_edge=args.edge,
        representation=args.representation,
    )
    reached_e = int((edge_dist >= 0).sum())
    reached_n = int((node_dist >= 0).sum())
    print(f"reached         {reached_e} hyperedges, {reached_n} hypernodes")
    both = np.concatenate([edge_dist, node_dist])
    both = both[both >= 0]
    print(f"max distance    {int(both.max()) if both.size else 0}")
    hist = np.bincount(both) if both.size else np.array([], dtype=int)
    for d, count in enumerate(hist.tolist()):
        print(f"  level {d}: {count}")
    return 0


def cmd_slinegraph(args: argparse.Namespace) -> int:
    hg = _hypergraph(args.file)
    lg = hg.s_linegraph(args.s, algorithm=args.algorithm)
    print(f"s={args.s} line graph: {lg.num_vertices()} vertices, "
          f"{lg.num_edges()} edges")
    comps = lg.s_connected_components()
    print(f"components (non-singleton): {len(comps)}")
    if args.output:
        el = lg.edgelist
        _write(
            args.output,
            BiEdgeList(
                el.src, el.dst, el.weights,
                n0=el.num_vertices(), n1=el.num_vertices(),
            ),
        )
        print(f"wrote {args.output}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.core.smetrics import format_smetrics_table, s_metrics_report

    hg = _hypergraph(args.file)
    reports = s_metrics_report(hg.biadjacency, args.s)
    if args.json:
        _dump_json({s: rep for s, rep in sorted(reports.items())})
    elif args.table:
        print(format_smetrics_table(reports))
    else:
        for s in sorted(reports):
            print(reports[s].summary())
    return 0


def cmd_toplex(args: argparse.Namespace) -> int:
    hg = _hypergraph(args.file)
    tops = toplexes(hg.biadjacency)
    print(f"toplexes        {tops.size} / {hg.number_of_edges()} hyperedges")
    if args.verbose:
        for t in tops.tolist():
            print(f"  edge {t}: {hg.edge_incidence(t).tolist()}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from repro.io.dot import bipartite_dot, linegraph_dot

    hg = _hypergraph(args.file)
    if args.linegraph:
        lg = hg.s_linegraph(args.s)
        text = linegraph_dot(lg.edgelist, s=args.s, path=args.output)
    else:
        text = bipartite_dot(hg.biadjacency, path=args.output)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.algorithms.hypercc import hypercc
    from repro.parallel import ParallelRuntime, export_chrome_trace

    hg = _hypergraph(args.file)
    rt = ParallelRuntime(
        num_threads=args.threads,
        scheduler=args.scheduler,
        partitioner=args.partitioner,
        trace=True,
    )
    if args.algorithm == "cc":
        hypercc(hg.biadjacency, runtime=rt)
    elif args.algorithm == "bfs":
        hg.bfs(args.source, representation="bipartite", runtime=rt)
    else:  # slinegraph
        from repro.linegraph import slinegraph_hashmap

        slinegraph_hashmap(hg.biadjacency, args.s, runtime=rt)
    count = export_chrome_trace(rt.ledger, args.output)
    print(f"wrote {args.output} ({count} events, simulated makespan "
          f"{rt.makespan:.0f}); open at chrome://tracing")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run a named workload under full instrumentation (repro.obs)."""
    from repro.obs.profile import run_profile

    summary = run_profile(
        args.workload,
        dataset=args.dataset,
        s=args.s,
        threads=args.threads,
        algorithm=args.algorithm,
        out=args.out,
    )
    if args.json:
        _dump_json(summary)
        return 0
    print(f"workload        {summary['workload']} "
          f"(dataset={summary['dataset']}, s={summary['s']}, "
          f"threads={summary['threads']})")
    for name, st in sorted(summary["spans"].items()):
        print(f"  span {name:<36} x{st['count']:<4} "
              f"total {st['total_ms']:.2f} ms  max {st['max_ms']:.2f} ms")
    counters = [
        inst for inst in summary["metrics"] if inst.get("kind") == "counter"
    ]
    for inst in counters:
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(inst.get("labels", {}).items()))
        print(f"  counter {inst['name']}{{{labels}}} = {inst['value']}")
    if "trace_path" in summary:
        print(f"wrote {summary['trace_path']} ({summary['num_events']} "
              f"events); open in Perfetto or chrome://tracing")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table1

    print(format_table1(table1()))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.bench.verify import verify_headline_claims

    lines, ok = verify_headline_claims(verbose=args.verbose)
    for line in lines:
        print(line)
    print("\nreproduction self-check:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.bench.harness import (
        fig9_slinegraph,
        strong_scaling_bfs,
        strong_scaling_cc,
    )
    from repro.bench.reporting import format_fig9, format_scaling

    threads = tuple(args.threads)
    be = {"backend": args.backend, "workers": args.workers}
    results: list
    if args.figure == 7:
        results = strong_scaling_cc(args.dataset, threads, **be)
        text = format_scaling(results)
    elif args.figure == 8:
        results = strong_scaling_bfs(args.dataset, threads, **be)
        text = format_scaling(results)
    elif args.figure == 9:
        results = fig9_slinegraph(
            args.dataset, s=args.s, threads=max(threads),
            kernel=args.kernel, **be,
        )
        text = format_fig9(results)
    else:
        raise SystemExit(f"no driver for figure {args.figure} (use 7, 8, 9)")
    if args.json:
        print(json.dumps({
            "figure": args.figure,
            "dataset": args.dataset,
            "backend": args.backend or "simulated",
            "workers": args.workers,
            "kernel": args.kernel,
            "results": [asdict(r) for r in results],
        }, indent=2))
    else:
        print(text)
    return 0


_GENERATORS = {
    "uniform": lambda a: uniform_random_hypergraph(
        a.edges, a.nodes, max(1, int(a.mean_size)), seed=a.seed
    ),
    "powerlaw": lambda a: powerlaw_hypergraph(
        a.edges, a.nodes, mean_edge_size=a.mean_size, seed=a.seed
    ),
    "community": lambda a: community_hypergraph(
        a.edges, a.nodes, mean_community_size=a.mean_size, seed=a.seed
    ),
}


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analytics server until interrupted (Ctrl-C to stop)."""
    from repro.obs import MetricsRegistry
    from repro.service import (
        AnalyticsServer,
        AsyncAnalyticsServer,
        QueryEngine,
        ShardedEngine,
        SLineGraphCache,
    )

    registry = MetricsRegistry()
    engine_kwargs = dict(
        cache=SLineGraphCache(
            budget_bytes=None
            if args.budget_mb is None
            else int(args.budget_mb * 1024 * 1024),
            metrics=registry,
        ),
        num_threads=args.threads,
        metrics=registry,
        backend=args.backend,
        workers=args.workers,
    )
    if args.shards > 1:
        engine = ShardedEngine(num_shards=args.shards, **engine_kwargs)
    else:
        engine = QueryEngine(**engine_kwargs)
    for spec in args.dataset:
        name, _, source = spec.partition("=")
        engine.store.register(name, source or name)
    for spec in args.store:
        name, _, directory = spec.partition("=")
        if not directory:
            name, directory = Path(name).name or name, name
        info = engine.register_store(name, directory)
        rec = info["recovery"]
        print(f"opened store {directory!r} as {name!r} "
              f"(version {info['version']}, "
              f"{rec['replayed_batches']} batch(es) replayed, "
              f"{len(info['hydrated'])} hot line graph(s) rehydrated)",
              flush=True)
    quotas = None
    if args.quota:
        quotas = {}
        for spec in args.quota:
            tenant, _, shape = spec.partition("=")
            rate, _, burst = shape.partition(":")
            try:
                quotas[tenant] = {
                    "rate": float(rate),
                    "burst": float(burst) if burst else None,
                }
            except ValueError:
                raise SystemExit(
                    f"--quota must be TENANT=RATE[:BURST], got {spec!r}"
                )
    if args.frontend == "async":
        server = AsyncAnalyticsServer(
            engine,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            quotas=quotas,
        )
        server.start()
    else:
        server = AnalyticsServer(
            engine, host=args.host, port=args.port, quotas=quotas
        )
        server.start()
    host, port = server.address
    shard_note = (
        f", shards={args.shards}" if args.shards > 1 else ""
    )
    print(f"serving {len(engine.store)} dataset(s) "
          f"{engine.store.names()} on {host}:{port} "
          f"(frontend={args.frontend}, backend={engine.backend.name}"
          f"{shard_note})", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        engine.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Send JSON queries to a running server; one response line each."""
    from repro.service import SocketSession

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect must be HOST:PORT, got {args.connect!r}")
    lines = args.query if args.query else [ln for ln in sys.stdin]
    queries = []
    for text in lines:
        text = text.strip()
        if not text:
            continue
        try:
            queries.append(json.loads(text))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"bad query {text!r}: {exc}")
    if (args.backend or args.workers) and not args.batch:
        raise SystemExit(
            "--backend/--workers select the batch dispatch backend; "
            "add --batch"
        )
    failed = 0
    with SocketSession(host, int(port), strict=False) as session:
        if args.batch:
            responses = session.batch(
                queries, backend=args.backend, workers=args.workers
            )
        else:
            responses = [session.request(q) for q in queries]
    for resp in responses:
        if isinstance(resp, dict) and not resp.get("ok", False):
            failed += 1
        print(json.dumps(resp))
    return 1 if failed else 0


def cmd_update(args: argparse.Namespace) -> int:
    """Apply batched mutations to a hypergraph file (repro.dynamic).

    The ops file is JSON: a list of mutation records (one batch) or a
    list of such lists (applied as successive batches).  The compacted
    result is optionally written back out, and a JSON summary — per-batch
    deltas plus patch/rebuild outcomes for any maintained s-line graphs —
    goes to stdout.
    """
    from repro.dynamic import DynamicHypergraph, IncrementalSLineGraph

    hg = _hypergraph(args.file)
    try:
        payload = json.loads(Path(args.ops).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read ops file {args.ops!r}: {exc}")
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not payload:
        raise SystemExit(
            "ops file must hold a non-empty JSON list of mutation records "
            "(or a list of batches)"
        )
    if all(isinstance(b, list) for b in payload):
        batches = payload
    else:
        batches = [payload]
    dyn = DynamicHypergraph(hg)
    inc = IncrementalSLineGraph(dyn) if args.s else None
    for s in args.s:
        inc.materialize(s)
    applied = []
    for i, batch in enumerate(batches):
        try:
            res = dyn.apply(batch)
        except ValueError as exc:
            raise SystemExit(f"batch {i}: {exc}")
        entry = res.as_dict()
        if inc is not None:
            entry["linegraphs"] = {
                str(s): how for s, how in inc.update(res).items()
            }
        applied.append(entry)
    snap = dyn.compact()
    if args.output:
        _write(
            args.output,
            BiEdgeList(
                snap.row, snap.col,
                n0=snap.number_of_edges(), n1=snap.number_of_nodes(),
            ),
        )
    _dump_json(
        {
            "input": args.file,
            "output": args.output,
            "batches": applied,
            "version": dyn.version,
            "num_edges": snap.number_of_edges(),
            "num_nodes": snap.number_of_nodes(),
        }
    )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Durable store operations: build, inspect, compact (repro.store)."""
    from repro.store import StoreError, build_store, open_store

    try:
        if args.store_command == "build":
            manifest = build_store(
                args.directory,
                args.source,
                name=args.name,
                warm_s=tuple(args.warm_s),
                include_adjoin=not args.no_adjoin,
                compress=args.compress,
            )
            print(
                f"built store {args.directory!r} "
                f"(dataset {manifest.name!r}, {manifest.num_edges} edges, "
                f"{manifest.num_nodes} nodes, "
                f"{manifest.slab_bytes()} slab bytes, "
                f"{len(manifest.hot)} hot line graph(s))"
            )
            return 0
        handle = open_store(args.directory)
        try:
            if args.store_command == "compact":
                before = handle.manifest.base_version
                handle.checkpoint()
                print(
                    f"compacted store {args.directory!r}: base version "
                    f"{before} -> {handle.manifest.base_version} "
                    f"({handle.manifest.slab_bytes()} slab bytes, WAL reset)"
                )
                return 0
            # inspect
            stats = handle.stats()
            if args.verify:
                bad = handle.verify()
                stats["checksum_failures"] = bad
                if bad:
                    print(f"checksum FAILED for: {', '.join(bad)}",
                          file=sys.stderr)
            if args.json:
                _dump_json(stats)
            else:
                rec = stats["recovery"]
                print(f"store     {stats['directory']}")
                print(f"dataset   {stats['name']}")
                print(f"version   {stats['version']} "
                      f"(snapshot at {stats['base_version']}, "
                      f"{rec['replayed_batches']} WAL batch(es) replayed)")
                print(f"slab      {stats['slab']} "
                      f"({stats['slab_bytes']} bytes, "
                      f"{stats['arrays']} arrays)")
                print(f"wal       {stats['wal']['bytes']} bytes")
                if rec["torn_tail"]:
                    print(f"recovered torn WAL tail: {rec['reason']} "
                          f"({rec['truncated_bytes']} bytes truncated)")
                if handle.manifest.hot:
                    specs = ", ".join(
                        f"s={h['s']} ({'edges' if h['over_edges'] else 'nodes'})"
                        for h in handle.manifest.hot
                    )
                    print(f"hot       {specs}")
            return 1 if args.verify and stats["checksum_failures"] else 0
        finally:
            handle.close()
    except StoreError as exc:
        raise SystemExit(f"store error: {exc}") from None


def cmd_check(args: argparse.Namespace) -> int:
    """Static invariant lint pass over the given paths (repro.check)."""
    import time

    from repro.check import (
        conformance_summary,
        lint_paths,
        parse_tree,
        render_conformance_table,
        render_json,
        render_suppressions,
        render_text,
        select_rules,
    )

    if getattr(args, "conformance", False):
        # protocol-conformance diff only: SPEC vs the implemented wire
        # surface, as a markdown table (for CI job summaries)
        tree, errors = parse_tree(args.paths)
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        rows = conformance_summary(tree)
        print(render_conformance_table(rows))
        drifted = [r for r in rows if r["status"] != "ok"]
        return 1 if drifted or errors else 0
    try:
        rules = select_rules(args.rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    report = lint_paths(args.paths, rules=rules)
    elapsed = time.perf_counter() - start
    if getattr(args, "list_suppressions", False):
        # suppression inventory audit: every noqa comment with its
        # justification, stale ones flagged
        print(render_suppressions(report))
        return 1 if report.stale_suppressions else 0
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
        print(
            f"({len(report.paths)} files, "
            f"{len(rules)} rule(s), {elapsed:.2f}s)"
        )
    return 0 if report.ok else 1


def _parse_tenants(specs: list[str], dataset: str) -> list:
    """``NAME[=RPS[:CONNECTIONS]]`` CLI specs -> TenantSpec list."""
    from repro.bench.load import TenantSpec

    tenants = []
    for spec in specs or ["default=50"]:
        name, _, shape = spec.partition("=")
        rps, _, conns = shape.partition(":")
        try:
            tenants.append(
                TenantSpec(
                    name,
                    rps=float(rps) if rps else 50.0,
                    connections=int(conns) if conns else 1,
                    datasets=(dataset,),
                )
            )
        except ValueError as exc:
            raise SystemExit(f"bad --tenant {spec!r}: {exc}")
    return tenants


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "trace":
        # a workload trace, not a hypergraph: seeded timestamped ops
        # replayable by repro.bench.load (see docs/LOAD.md)
        from repro.bench.load import (
            WorkloadGenerator,
            WorkloadSpec,
            write_trace,
        )

        spec = WorkloadSpec(
            tenants=tuple(_parse_tenants(args.tenant, args.trace_dataset)),
            duration_s=args.duration,
            seed=args.seed,
            num_keys=args.num_keys,
        )
        ops = WorkloadGenerator(spec).schedule()
        write_trace(args.output, ops, spec)
        tenants = ", ".join(
            f"{t.name}@{t.rps:g}rps" for t in spec.tenants
        )
        print(f"wrote {args.output} ({len(ops)} ops over "
              f"{spec.duration_s:g}s: {tenants}; seed={spec.seed})")
        return 0
    if args.kind in _GENERATORS:
        el = _GENERATORS[args.kind](args)
    else:  # a Table I stand-in by name
        el = load(args.kind)
    _write(args.output, el)
    print(f"wrote {args.output} "
          f"({el.num_vertices(0)} edges, {el.num_vertices(1)} nodes, "
          f"{len(el)} incidences)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NWHy reproduction: hypergraph analytics from the shell",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="Table-I style statistics of a file")
    p.add_argument("file")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (incl. size/degree dists)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("convert", help="convert between .mtx and .hygra")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("cc", help="exact connected components")
    p.add_argument("file")
    p.add_argument("--representation", default="adjoin",
                   choices=["adjoin", "bipartite"])
    p.add_argument("--algorithm", default="afforest",
                   choices=["afforest", "label_propagation",
                            "shiloach_vishkin"])
    p.set_defaults(func=cmd_cc)

    p = sub.add_parser("bfs", help="exact BFS from a hypernode/hyperedge")
    p.add_argument("file")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--edge", action="store_true",
                   help="source is a hyperedge ID")
    p.add_argument("--representation", default="adjoin",
                   choices=["adjoin", "bipartite"])
    p.set_defaults(func=cmd_bfs)

    p = sub.add_parser("slinegraph", help="construct an s-line graph")
    p.add_argument("file")
    p.add_argument("-s", type=int, default=1)
    p.add_argument("--algorithm", default="hashmap",
                   choices=["naive", "intersection", "hashmap",
                            "queue_hashmap", "queue_intersection", "matrix"])
    p.add_argument("-o", "--output", default=None,
                   help="write the line graph as .mtx/.hygra")
    p.set_defaults(func=cmd_slinegraph)

    p = sub.add_parser("metrics", help="s-measure report (Aksoy et al.)")
    p.add_argument("file")
    p.add_argument("-s", type=int, nargs="+", default=[1, 2, 3])
    p.add_argument("--table", action="store_true",
                   help="one aligned table instead of per-s summaries")
    p.add_argument("--json", action="store_true",
                   help="full reports as one JSON document")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("toplex", help="maximal hyperedges (Algorithm 3)")
    p.add_argument("file")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_toplex)

    p = sub.add_parser("trace", help="export a simulated schedule trace")
    p.add_argument("file")
    p.add_argument("-o", "--output", default="trace.json")
    p.add_argument("--algorithm", default="cc",
                   choices=["cc", "bfs", "slinegraph"])
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--scheduler", default="work_stealing",
                   choices=["work_stealing", "static"])
    p.add_argument("--partitioner", default="cyclic",
                   choices=["cyclic", "blocked"])
    p.add_argument("--source", type=int, default=0)
    p.add_argument("-s", type=int, default=2)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run a named workload under tracing + metrics (repro.obs)",
    )
    p.add_argument("--workload", default="slinegraph",
                   choices=["slinegraph", "smetrics", "service"])
    p.add_argument("--dataset", default="rand1",
                   help="file path or Table I stand-in name")
    p.add_argument("-s", type=int, default=2)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--algorithm", default="hashmap",
                   choices=["naive", "intersection", "hashmap",
                            "queue_hashmap", "queue_intersection"])
    p.add_argument("-o", "--out", default=None,
                   help="write the merged chrome trace here (e.g. "
                        "trace.json)")
    p.add_argument("--json", action="store_true",
                   help="full summary as one JSON document")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("dot", help="Graphviz export (bipartite or s-line)")
    p.add_argument("file")
    p.add_argument("--linegraph", action="store_true")
    p.add_argument("-s", type=int, default=1)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("table1", help="regenerate Table I over the stand-ins")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("verify",
                       help="fast self-check of the paper's headline claims")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("bench", help="regenerate a paper figure's panel")
    p.add_argument("--figure", type=int, required=True, choices=[7, 8, 9])
    p.add_argument("--dataset", default="rand1")
    p.add_argument("--threads", type=int, nargs="+",
                   default=[1, 2, 4, 8, 16, 32, 64])
    p.add_argument("-s", type=int, default=2, help="s for figure 9")
    p.add_argument("--backend", default=None,
                   choices=["simulated", "threaded", "process"],
                   help="execution backend for pure phases (default: "
                        "simulated; figures are identical either way)")
    p.add_argument("--workers", type=int, default=None,
                   help="real worker pool size (default: bounded cpu count)")
    p.add_argument("--kernel", default=None,
                   choices=["auto", "naive", "hashmap", "intersection",
                            "bitset"],
                   help="counting kernel for figure 9 builders (auto = "
                        "degree-bucketed dispatcher; default: builder's "
                        "own choice)")
    p.add_argument("--json", action="store_true",
                   help="results as one JSON document")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("serve",
                       help="serve resident hypergraphs over TCP (JSON lines)")
    p.add_argument("--dataset", action="append", default=[],
                   metavar="NAME[=SOURCE]",
                   help="register a dataset at startup; SOURCE is a file "
                        "path or Table I stand-in name (default: NAME)")
    p.add_argument("--store", action="append", default=[],
                   metavar="[NAME=]DIR",
                   help="open a durable store directory (repro.store) at "
                        "startup: mmap the snapshot, replay the WAL tail, "
                        "rehydrate hot line graphs (default NAME: the "
                        "directory's basename)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 binds an ephemeral port (printed at startup)")
    p.add_argument("--budget-mb", type=float, default=64.0, dest="budget_mb",
                   help="s-line-graph cache budget in MiB")
    p.add_argument("--threads", type=int, default=4,
                   help="simulated threads for batch dispatch")
    p.add_argument("--backend", default=None,
                   choices=["simulated", "threaded", "process"],
                   help="execution backend for batch dispatch (default: "
                        "$REPRO_BACKEND or simulated)")
    p.add_argument("--workers", type=int, default=None,
                   help="real worker pool size (default: $REPRO_WORKERS "
                        "or bounded cpu count)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition each dataset's line-graph build across "
                        "N hyperedge-range shards (>1 enables the sharded "
                        "engine; answers stay bit-identical)")
    p.add_argument("--frontend", default="threaded",
                   choices=["threaded", "async"],
                   help="connection front door: thread-per-connection "
                        "(threaded) or the asyncio server with pipelining "
                        "and admission control (async)")
    p.add_argument("--max-inflight", type=int, default=8,
                   dest="max_inflight",
                   help="async frontend: concurrent engine executions "
                        "(ignored for --frontend threaded)")
    p.add_argument("--quota", action="append", default=[],
                   metavar="TENANT=RATE[:BURST]",
                   help="per-tenant token-bucket admission: requests "
                        "carrying this tenant id past RATE req/s (burst "
                        "up to BURST, default RATE) get a structured "
                        "quota_exceeded response; TENANT '*' sets a "
                        "default bucket shape for unlisted tenants "
                        "(repeatable; works with both frontends)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query",
                       help="send JSON queries to a running `repro serve`")
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("query", nargs="*",
                   help="query JSON objects (default: read lines from stdin)")
    p.add_argument("--batch", action="store_true",
                   help="send all queries as one batch request")
    p.add_argument("--backend", default=None,
                   choices=["simulated", "threaded", "process"],
                   help="server-side execution backend for this batch "
                        "(requires --batch)")
    p.add_argument("--workers", type=int, default=None,
                   help="server-side worker pool size for this batch "
                        "(requires --batch)")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("update",
                       help="apply batched mutations to a hypergraph file")
    p.add_argument("file")
    p.add_argument("--ops", required=True,
                   help="JSON file: a list of mutation records "
                        '({"op": "add_edge", "members": [...]}, ...) or a '
                        "list of such lists (one batch each)")
    p.add_argument("-o", "--output", default=None,
                   help="write the compacted hypergraph here "
                        "(.mtx/.hygra/.csv)")
    p.add_argument("-s", type=int, nargs="*", default=[],
                   help="maintain these s-line graphs incrementally and "
                        "report patch/rebuild outcomes")
    p.set_defaults(func=cmd_update)

    p = sub.add_parser(
        "store",
        help="durable store: build / inspect / compact (repro.store)",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    sp = store_sub.add_parser(
        "build", help="freeze a dataset into a store directory"
    )
    sp.add_argument("source",
                    help="file path (.mtx/.hygra/.csv/.json) or Table I "
                         "stand-in name")
    sp.add_argument("directory", help="store directory to create/overwrite")
    sp.add_argument("--name", default=None,
                    help="dataset name recorded in the manifest "
                         "(default: derived from SOURCE)")
    sp.add_argument("--warm-s", type=int, nargs="*", default=[],
                    dest="warm_s", metavar="S",
                    help="persist these s-line graphs as hot cache entries "
                         "for warm restarts")
    sp.add_argument("--no-adjoin", action="store_true", dest="no_adjoin",
                    help="skip persisting the adjoin CSR")
    sp.add_argument("--compress", action="store_true",
                    help="persist CSR adjacency columns delta+varint "
                         "encoded (smaller slab; open decodes once)")
    sp.set_defaults(func=cmd_store)
    sp = store_sub.add_parser(
        "inspect", help="print a store's manifest/WAL/recovery state"
    )
    sp.add_argument("directory")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable output")
    sp.add_argument("--verify", action="store_true",
                    help="checksum every slab array (exit 1 on mismatch)")
    sp.set_defaults(func=cmd_store)
    sp = store_sub.add_parser(
        "compact", help="fold the WAL into a fresh snapshot (checkpoint)"
    )
    sp.add_argument("directory")
    sp.set_defaults(func=cmd_store)

    p = sub.add_parser(
        "check",
        help="invariant lint pass (R001-R304) over Python sources",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--rules", nargs="*", default=None, metavar="RXXX",
                   help="run only these rule codes (default: all)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--show-suppressed", action="store_true",
                   dest="show_suppressed",
                   help="also print findings silenced by noqa comments")
    p.add_argument("--list-suppressions", action="store_true",
                   dest="list_suppressions",
                   help="print the noqa inventory with justifications "
                        "(exit 1 if any suppression is stale)")
    p.add_argument("--conformance", action="store_true",
                   help="print the protocol-conformance diff (SPEC vs "
                        "implementation) as a markdown table and exit")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("generate",
                       help="generate a hypergraph file or a workload trace")
    p.add_argument("kind",
                   help="uniform | powerlaw | community | trace | "
                        "<Table I name>")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--edges", type=int, default=1000)
    p.add_argument("--nodes", type=int, default=1000)
    p.add_argument("--mean-size", type=float, default=8.0, dest="mean_size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenant", action="append", default=[],
                   metavar="NAME[=RPS[:CONNECTIONS]]",
                   help="trace only: one tenant's traffic shape "
                        "(repeatable; default: one tenant at 50 rps)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="trace only: workload length in seconds")
    p.add_argument("--num-keys", type=int, default=64, dest="num_keys",
                   help="trace only: Zipf keyspace size (vertex ids)")
    p.add_argument("--trace-dataset", default="load", dest="trace_dataset",
                   help="trace only: resident dataset name the ops target")
    p.set_defaults(func=cmd_generate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed early: exit quietly
        import os

        try:
            sys.stdout.close()
        except (OSError, ValueError):
            pass  # double-close / already-broken pipe: nothing left to flush
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Extension-sniffing hypergraph loading — one entry point for every format.

The CLI, the serving store (:mod:`repro.service.store`) and user scripts
all need the same move: take a path, pick the reader by extension, hand
back a :class:`~repro.structures.edgelist.BiEdgeList` (or a full
:class:`~repro.core.hypergraph.NWHypergraph`).  Table I stand-in names
(``rand1``, ``com-orkut``, ...) are accepted wherever a path is, so
serving sessions can be spun up without files on disk.

Supported extensions: ``.mtx`` (MatrixMarket), ``.hygra``/``.adj``
(Hygra's AdjacencyHypergraph), ``.csv`` (incidence tables), ``.json``
(the repro-hypergraph interchange format).  A *directory* containing a
store manifest (:mod:`repro.store`) is read back through
:func:`~repro.store.recover.read_store` — the committed snapshot plus
any write-ahead-log tail.
"""

from __future__ import annotations

from pathlib import Path

from repro.structures.edgelist import BiEdgeList

__all__ = ["read_any", "write_any", "load_hypergraph"]


def read_any(path: str | Path) -> BiEdgeList:
    """Read a hypergraph file, picking the parser from the extension.

    A bare Table I dataset name (no extension, e.g. ``"rand1"``) resolves
    to the generated stand-in instead of a file; a store directory
    (:mod:`repro.store`) resolves to its current durable state.
    """
    p = Path(path)
    if p.is_dir():
        from repro.store import is_store_dir, read_store

        if is_store_dir(p):
            return read_store(p)
        raise ValueError(
            f"{str(p)!r} is a directory without a store manifest "
            "(expected manifest.json from `repro store build`)"
        )
    suffix = p.suffix.lower()
    if suffix == ".mtx":
        from .mmio import read_mm

        return read_mm(p)
    if suffix in (".hygra", ".adj"):
        from .hygra import read_hygra

        return read_hygra(p)
    if suffix == ".csv":
        from .csv import read_incidence_csv

        el, _, _ = read_incidence_csv(p)
        return el
    if suffix == ".json":
        from .json_io import read_json

        return read_json(p).hypergraph._el
    if not suffix:
        from .datasets import DATASETS, load

        if str(path).lower() in DATASETS:
            return load(str(path))
    raise ValueError(
        f"unsupported input format: {suffix or str(path)!r} "
        "(use .mtx/.hygra/.adj/.csv/.json or a Table I dataset name)"
    )


def write_any(path: str | Path, el: BiEdgeList) -> None:
    """Write a hypergraph file, picking the writer from the extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".mtx":
        from .mmio import write_mm

        write_mm(path, el)
    elif suffix in (".hygra", ".adj"):
        from .hygra import write_hygra

        write_hygra(path, el)
    elif suffix == ".csv":
        from .csv import write_incidence_csv

        write_incidence_csv(path, el)
    else:
        raise ValueError(
            f"unsupported output format: {suffix!r} (use .mtx/.hygra/.csv)"
        )


def load_hypergraph(path: str | Path) -> "NWHypergraph":
    """Read ``path`` (or stand-in name) into a ready ``NWHypergraph``."""
    from repro.core.hypergraph import NWHypergraph

    el = read_any(path)
    return NWHypergraph(
        el.part0,
        el.part1,
        el.weights,
        num_edges=el.num_vertices(0),
        num_nodes=el.num_vertices(1),
    )

"""SNAP edge-list format reader (the §IV-B pipeline's raw input).

The Stanford SNAP collection ships plain-text undirected edge lists
(``com-orkut.ungraph.txt`` style): ``#``-prefixed comment/header lines,
then one ``u<TAB>v`` (or whitespace-separated) pair per line.  Node IDs
may be arbitrary non-negative integers with gaps; ``compact=True``
renumbers them densely (preserving numeric order) the way the curated
pipelines do.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro.structures.edgelist import EdgeList

__all__ = ["read_snap_edgelist"]


def read_snap_edgelist(
    path: str | Path | TextIO, compact: bool = True
) -> EdgeList:
    """Parse a SNAP ungraph file into an (undirected, deduplicated) EdgeList.

    Self-loops are dropped; duplicate pairs collapse.  With ``compact``
    the vertex space is exactly the set of IDs seen (renumbered 0..n-1);
    without it, IDs are kept and the space spans ``max ID + 1``.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        us: list[int] = []
        vs: list[int] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"line {lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-integer endpoint in {line!r}"
                ) from None
            if u < 0 or v < 0:
                raise ValueError(f"line {lineno}: negative vertex ID")
            if u == v:
                continue  # self-loops carry no hypergraph information
            us.append(u)
            vs.append(v)
    finally:
        if close:
            fh.close()
    src = np.array(us, dtype=np.int64)
    dst = np.array(vs, dtype=np.int64)
    if compact and src.size:
        vocab = np.unique(np.concatenate([src, dst]))
        src = np.searchsorted(vocab, src)
        dst = np.searchsorted(vocab, dst)
        n = int(vocab.size)
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return EdgeList(src, dst, num_vertices=n).deduplicate()

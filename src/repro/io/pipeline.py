"""Graph → hypergraph materialization (the paper's dataset pipeline, §IV-B).

The Table I social hypergraphs were built by running community detection
on SNAP graphs and treating *each community as a hyperedge* and each
member as a hypernode.  This module reproduces that pipeline end to end on
any edge list:

    graph --LPA communities--> {community: members} --materialize--> H

plus the simpler KONECT route (a bipartite graph *is already* a
hypergraph's incidence structure, read directly by :mod:`repro.io.mmio`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.communities import label_propagation_communities
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList, EdgeList

__all__ = [
    "hypergraph_from_graph_communities",
    "communities_to_hypergraph",
    "expand_communities",
]


def communities_to_hypergraph(
    labels: np.ndarray, min_size: int = 1
) -> BiEdgeList:
    """Materialize a community labeling as a hypergraph.

    Each distinct label becomes one hyperedge whose members are the
    vertices carrying it; communities below ``min_size`` are dropped (the
    curated datasets drop trivial communities).  Hyperedge IDs are assigned
    in ascending order of the community's smallest member.
    """
    labels = np.asarray(labels, dtype=np.int64)
    values, inverse, counts = np.unique(
        labels, return_inverse=True, return_counts=True
    )
    keep = counts >= min_size
    # re-number kept communities by first occurrence order of their label
    new_id = np.full(values.size, -1, dtype=np.int64)
    new_id[keep] = np.arange(int(keep.sum()), dtype=np.int64)
    comm_of_vertex = new_id[inverse]
    member = comm_of_vertex >= 0
    return BiEdgeList(
        comm_of_vertex[member],
        np.flatnonzero(member),
        n0=int(keep.sum()),
        n1=labels.size,
    )


def expand_communities(
    graph: CSR, el: BiEdgeList, min_links: int = 2
) -> BiEdgeList:
    """Overlap expansion: absorb well-connected fringe vertices.

    LPA yields a *partition*, but the SNAP ground-truth communities behind
    Table I overlap.  This step adds, to each community, every outside
    vertex with at least ``min_links`` graph edges into it — so hub
    vertices join several hyperedges, producing the overlap structure the
    s-line experiments rely on.
    """
    from repro.structures.biadjacency import BiAdjacency

    h = BiAdjacency.from_biedgelist(el)
    rows = [el.part0]
    cols = [el.part1]
    for c in range(h.num_hyperedges()):
        members = h.members(c)
        member_mask = np.zeros(graph.num_vertices(), dtype=bool)
        member_mask[members] = True
        # count, for every vertex, its edges into this community
        from repro.graph.traversal import gather_neighbors

        src, dst = gather_neighbors(graph, members)
        outside = dst[~member_mask[dst]]
        if outside.size == 0:
            continue
        cand, links = np.unique(outside, return_counts=True)
        joiners = cand[links >= min_links]
        if joiners.size:
            rows.append(np.full(joiners.size, c, dtype=np.int64))
            cols.append(joiners)
    return BiEdgeList(
        np.concatenate(rows),
        np.concatenate(cols),
        n0=el.num_vertices(0),
        n1=el.num_vertices(1),
    ).deduplicate()


def hypergraph_from_graph_communities(
    edges: EdgeList | tuple[np.ndarray, np.ndarray],
    num_vertices: int | None = None,
    min_size: int = 2,
    seed: int = 0,
    expand_overlap: bool = False,
    min_links: int = 2,
) -> BiEdgeList:
    """The full §IV-B pipeline: undirected graph → LPA → hypergraph.

    ``edges`` is an :class:`EdgeList` or a ``(src, dst)`` pair (symmetrized
    internally).  Communities smaller than ``min_size`` are dropped, so
    every hyperedge models a genuine group.  ``expand_overlap`` runs
    :func:`expand_communities` afterwards, turning the LPA partition into
    overlapping communities like SNAP's ground truth.
    """
    if isinstance(edges, EdgeList):
        el = edges
    else:
        src, dst = edges
        el = EdgeList(src, dst, num_vertices=num_vertices)
    graph = CSR.from_edgelist(el.symmetrize().deduplicate())
    labels = label_propagation_communities(graph, seed=seed)
    out = communities_to_hypergraph(labels, min_size=min_size)
    if expand_overlap:
        out = expand_communities(graph, out, min_links=min_links)
    return out

"""JSON interchange for (labeled) hypergraphs.

A self-describing, dependency-free wire format:

    {
      "format": "repro-hypergraph",
      "version": 1,
      "edges": {"paper1": ["alice", "bob"], "paper2": ["bob"]}
    }

Edge names are JSON object keys (strings); node labels may be strings or
numbers.  The natural pairing is :class:`repro.core.labeled.LabeledHypergraph`;
integer-core hypergraphs round-trip through stringified IDs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, TextIO

import numpy as np

from repro.core.labeled import LabeledHypergraph

__all__ = ["jsonify", "read_json", "write_json"]


def jsonify(obj: Any) -> Any:
    """Recursively convert ``obj`` into ``json.dumps``-safe native types.

    NumPy leaks through every analytics result in the framework —
    ``np.int64`` histogram keys, ``np.float64`` means, distance arrays —
    and ``json.dumps`` raises ``TypeError`` on all of them.  This is the
    one conversion point the CLI's ``--json`` outputs and the serving
    layer (:mod:`repro.service`) share:

    * NumPy scalars become Python scalars (non-finite floats become
      ``None``, since JSON has no ``inf``/``nan``);
    * NumPy arrays become (nested) lists;
    * dataclasses (``DatasetStats``, ``SMetricsReport``, ...) become dicts;
    * dict *keys* are converted too (then stringified by ``json.dumps``
      as usual) and containers are walked recursively.
    """
    if isinstance(obj, np.generic):
        obj = obj.item()
    if isinstance(obj, float) and not np.isfinite(obj):
        return None
    if isinstance(obj, np.ndarray):
        return jsonify(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return jsonify(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {jsonify(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    return obj

_FORMAT = "repro-hypergraph"
_VERSION = 1


def write_json(
    path: str | Path | TextIO, lh: LabeledHypergraph, indent: int = 2
) -> None:
    """Serialize a labeled hypergraph (edge names become strings)."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "edges": {
            str(edge): list(members)
            for edge, members in lh.to_dict().items()
        },
    }
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        json.dump(payload, fh, indent=indent)
    finally:
        if close:
            fh.close()


def read_json(path: str | Path | TextIO) -> LabeledHypergraph:
    """Parse the JSON hypergraph format back into a labeled hypergraph."""
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        payload = json.load(fh)
    finally:
        if close:
            fh.close()
    if not isinstance(payload, dict):
        raise ValueError("top-level JSON value must be an object")
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"not a {_FORMAT} document (format={payload.get('format')!r})"
        )
    version = payload.get("version")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version!r}")
    edges = payload.get("edges")
    if not isinstance(edges, dict):
        raise ValueError("'edges' must be an object of edge -> member list")
    for name, members in edges.items():
        if not isinstance(members, list):
            raise ValueError(f"edge {name!r}: members must be a list")
    return LabeledHypergraph.from_dict(edges)

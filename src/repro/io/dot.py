"""Graphviz DOT export — visual debugging for small hypergraphs.

Two views, matching the paper's own figures:

* :func:`bipartite_dot` — the Figure 1b view: hyperedges as boxes,
  hypernodes as circles, incidence edges between them;
* :func:`linegraph_dot` — the Figure 5 view: hyperedges as vertices,
  s-line edges weighted by overlap (``penwidth`` scales with strength,
  like the figure's line widths).

Pure text generation (no graphviz dependency); render with
``dot -Tpng out.dot``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList

__all__ = ["bipartite_dot", "linegraph_dot"]


def _write(target: str | Path | TextIO | None, text: str) -> str:
    if target is None:
        return text
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
    return text


def bipartite_dot(
    h: BiAdjacency,
    path: str | Path | TextIO | None = None,
    graph_name: str = "hypergraph",
) -> str:
    """DOT source for the bipartite view (Fig. 1b).  Returns the text."""
    lines = [f"graph {graph_name} {{", "  rankdir=LR;"]
    lines.append("  subgraph cluster_edges {")
    lines.append('    label="hyperedges"; style=dashed;')
    for e in range(h.num_hyperedges()):
        lines.append(f'    e{e} [shape=box, label="e{e}"];')
    lines.append("  }")
    lines.append("  subgraph cluster_nodes {")
    lines.append('    label="hypernodes"; style=dashed;')
    for v in range(h.num_hypernodes()):
        lines.append(f'    v{v} [shape=circle, label="{v}"];')
    lines.append("  }")
    for e in range(h.num_hyperedges()):
        for v in h.members(e).tolist():
            lines.append(f"  e{e} -- v{v};")
    lines.append("}")
    return _write(path, "\n".join(lines) + "\n")


def linegraph_dot(
    el: EdgeList,
    s: int = 1,
    path: str | Path | TextIO | None = None,
    graph_name: str | None = None,
) -> str:
    """DOT source for an s-line edge list (Fig. 5 style).

    Edge ``penwidth`` scales with overlap (the figure's "strength of the
    connection"); isolated hyperedges are still drawn as lone vertices.
    """
    name = graph_name or f"slinegraph_s{s}"
    lines = [f"graph {name} {{", '  node [shape=circle];']
    for e in range(el.num_vertices()):
        lines.append(f'  e{e} [label="e{e}"];')
    max_w = (
        float(el.weights.max()) if el.weights is not None and el.weights.size
        else 1.0
    )
    for k in range(el.num_edges()):
        a, b = int(el.src[k]), int(el.dst[k])
        if el.weights is None:
            lines.append(f"  e{a} -- e{b};")
        else:
            w = float(el.weights[k])
            pen = 1.0 + 3.0 * w / max_w
            lines.append(
                f'  e{a} -- e{b} [label="{w:g}", penwidth={pen:.2f}];'
            )
    lines.append("}")
    return _write(path, "\n".join(lines) + "\n")

"""Hygra's AdjacencyHypergraph file format (Shun, PPoPP'20 [25]).

The baseline framework's native text format, so hypergraphs move between
this reproduction and Hygra directly (and so the curated datasets of the
paper, which ship in this format, can be loaded as-is):

    AdjacencyHypergraph
    <nv>                 # number of hypernodes
    <mv>                 # number of hypernode incidence entries
    <nh>                 # number of hyperedges
    <mh>                 # number of hyperedge incidence entries
    <nv offsets>         # one per line: start of each hypernode's list
    <mv values>          # hyperedge IDs incident on each hypernode
    <nh offsets>         # start of each hyperedge's list
    <mh values>          # hypernode IDs in each hyperedge

(``mv == mh`` always — both list the same incidences from opposite sides;
the format stores them redundantly and this reader validates they agree.)
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList

__all__ = ["read_hygra", "write_hygra"]

_HEADER = "AdjacencyHypergraph"


def read_hygra(path: str | Path | TextIO) -> BiEdgeList:
    """Parse an AdjacencyHypergraph file into a bipartite edge list."""
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        tokens = fh.read().split()
    finally:
        if close:
            fh.close()
    if not tokens or tokens[0] != _HEADER:
        raise ValueError(f"missing {_HEADER!r} header")
    nums = np.array(tokens[1:], dtype=np.int64)
    if nums.size < 4:
        raise ValueError("truncated AdjacencyHypergraph file")
    nv, mv, nh, mh = (int(x) for x in nums[:4])
    if mv != mh:
        raise ValueError(f"incidence counts disagree: mv={mv}, mh={mh}")
    body = nums[4:]
    expected = nv + mv + nh + mh
    if body.size != expected:
        raise ValueError(
            f"expected {expected} entries after the header, got {body.size}"
        )
    v_off = body[:nv]
    v_adj = body[nv : nv + mv]
    h_off = body[nv + mv : nv + mv + nh]
    h_adj = body[nv + mv + nh :]
    nodes = CSR(
        np.concatenate([v_off, [mv]]), v_adj, num_targets=nh
    )
    edges = CSR(
        np.concatenate([h_off, [mh]]), h_adj, num_targets=nv
    )
    # cross-validate the two redundant halves
    h = BiAdjacency(edges, nodes.sort_rows())
    if h.edges != h.nodes.transpose().sort_rows():
        raise ValueError("vertex and hyperedge incidence lists disagree")
    rows = np.repeat(np.arange(nh, dtype=np.int64), h.edges.degrees())
    return BiEdgeList(rows, h.edges.indices, n0=nh, n1=nv)


def write_hygra(path: str | Path | TextIO, el: BiEdgeList) -> None:
    """Write a bipartite edge list as an AdjacencyHypergraph file."""
    h = BiAdjacency.from_biedgelist(el)
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        nv, nh = h.num_hypernodes(), h.num_hyperedges()
        mv = mh = h.num_incidences()
        fh.write(f"{_HEADER}\n{nv}\n{mv}\n{nh}\n{mh}\n")
        for off in h.nodes.indptr[:-1]:
            fh.write(f"{off}\n")
        for x in h.nodes.indices:
            fh.write(f"{x}\n")
        for off in h.edges.indptr[:-1]:
            fh.write(f"{off}\n")
        for x in h.edges.indices:
            fh.write(f"{x}\n")
    finally:
        if close:
            fh.close()

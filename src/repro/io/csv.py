"""Two-column incidence CSV — the data-science ingestion format.

Most tabular hypergraph data arrives as an incidence table: one row per
(edge, node) membership, e.g. an author–paper CSV export.  This module
reads/writes that shape with optional header detection and arbitrary
string labels (integers stay integers; anything else becomes a label
mapping, returned alongside the edge list).
"""

from __future__ import annotations

import csv as _csv
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.structures.edgelist import BiEdgeList

__all__ = ["read_incidence_csv", "write_incidence_csv"]


def read_incidence_csv(
    path: str | Path | TextIO,
    delimiter: str = ",",
    header: bool | None = None,
) -> tuple[BiEdgeList, list, list]:
    """Read an ``edge,node`` incidence table.

    ``header=None`` auto-detects: if the first row's cells are not both
    integers, it is treated as a header.  Labels need not be integers;
    the return value is ``(biedgelist, edge_labels, node_labels)`` where
    the label lists map dense IDs back to the original values (pure-integer
    inputs get identity-style labels preserving the integer values).
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8", newline="")
        close = True
    else:
        fh = path
    try:
        reader = _csv.reader(fh, delimiter=delimiter)
        rows = [row for row in reader if row and any(c.strip() for c in row)]
    finally:
        if close:
            fh.close()
    if not rows:
        return BiEdgeList(), [], []
    for lineno, row in enumerate(rows, 1):
        if len(row) < 2:
            raise ValueError(f"row {lineno}: expected 2 columns, got {row!r}")

    def _is_int(cell: str) -> bool:
        try:
            int(cell)
            return True
        except ValueError:
            return False

    if header is None:
        header = not (_is_int(rows[0][0]) and _is_int(rows[0][1]))
    body = rows[1:] if header else rows
    edge_ids: dict = {}
    node_ids: dict = {}
    e_col: list[int] = []
    v_col: list[int] = []
    for raw_e, raw_v, *_ in body:
        e_key = int(raw_e) if _is_int(raw_e) else raw_e.strip()
        v_key = int(raw_v) if _is_int(raw_v) else raw_v.strip()
        e_col.append(edge_ids.setdefault(e_key, len(edge_ids)))
        v_col.append(node_ids.setdefault(v_key, len(node_ids)))
    el = BiEdgeList(
        np.array(e_col, dtype=np.int64),
        np.array(v_col, dtype=np.int64),
        n0=len(edge_ids),
        n1=len(node_ids),
    ).deduplicate()
    return el, list(edge_ids), list(node_ids)


def write_incidence_csv(
    path: str | Path | TextIO,
    el: BiEdgeList,
    edge_labels: list | None = None,
    node_labels: list | None = None,
    delimiter: str = ",",
    header: tuple[str, str] | None = ("edge", "node"),
) -> None:
    """Write a bipartite edge list as an incidence table.

    Optional label lists translate dense IDs back to original values.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8", newline="")
        close = True
    else:
        fh = path
    try:
        writer = _csv.writer(fh, delimiter=delimiter)
        if header is not None:
            writer.writerow(header)
        for e, v in zip(el.part0.tolist(), el.part1.tolist()):
            writer.writerow(
                [
                    edge_labels[e] if edge_labels is not None else e,
                    node_labels[v] if node_labels is not None else v,
                ]
            )
    finally:
        if close:
            fh.close()

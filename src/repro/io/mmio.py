"""MatrixMarket I/O — the paper's hypergraph ingestion path (Listing 2).

NWHy reads hypergraphs from MatrixMarket (``.mtx``) coordinate files whose
rows are hyperedges and columns hypernodes (the incidence matrix).  Two
reader entry points mirror Listing 2:

* :func:`graph_reader` — returns the bipartite edge list for constructing
  bi-adjacencies;
* :func:`graph_reader_adjoin` — returns the consolidated (adjoin) edge
  list plus the ``nrealedges`` / ``nrealnodes`` range sizes.

The writer produces standard ``coordinate pattern|real general`` files
round-trippable by scipy and other MM consumers.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.structures.edgelist import BiEdgeList, EdgeList

__all__ = ["read_mm", "write_mm", "graph_reader", "graph_reader_adjoin"]


def read_mm(path: str | Path | _io.TextIOBase) -> BiEdgeList:
    """Parse a MatrixMarket coordinate file into a bipartite edge list.

    Supports ``pattern``, ``real`` and ``integer`` fields, ``general`` and
    ``symmetric`` symmetry (symmetric entries are mirrored).  Rows map to
    hyperedges (part 0), columns to hypernodes (part 1); indices are
    converted from MatrixMarket's 1-based convention.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("missing %%MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise ValueError(f"unsupported MatrixMarket header: {header!r}")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("pattern", "real", "integer"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = None if field == "pattern" else np.empty(nnz, dtype=np.float64)
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if vals is not None:
                vals[k] = float(parts[2]) if len(parts) > 2 else 1.0
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, found {k}")
        if symmetry == "symmetric":
            off = rows != cols
            mirrored_rows = cols[off]
            mirrored_cols = rows[off]
            rows = np.concatenate([rows, mirrored_rows])
            cols = np.concatenate([cols, mirrored_cols])
            if vals is not None:
                vals = np.concatenate([vals, vals[off]])
        return BiEdgeList(rows, cols, vals, n0=nrows, n1=ncols)
    finally:
        if close:
            fh.close()


def write_mm(
    path: str | Path | _io.TextIOBase,
    el: BiEdgeList,
    comment: str = "written by repro (NWHy reproduction)",
) -> None:
    """Write a bipartite edge list as a MatrixMarket coordinate file."""
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        field = "pattern" if el.weights is None else "real"
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            fh.write(f"% {comment}\n")
        n0, n1 = el.vertex_cardinality
        fh.write(f"{n0} {n1} {len(el)}\n")
        if el.weights is None:
            for r, c in zip(el.part0.tolist(), el.part1.tolist()):
                fh.write(f"{r + 1} {c + 1}\n")
        else:
            for r, c, w in zip(
                el.part0.tolist(), el.part1.tolist(), el.weights.tolist()
            ):
                fh.write(f"{r + 1} {c + 1} {w:g}\n")
    finally:
        if close:
            fh.close()


def graph_reader(path: str | Path) -> BiEdgeList:
    """Listing 2: read a hypergraph as a bipartite edge list."""
    return read_mm(path)


def graph_reader_adjoin(path: str | Path) -> tuple[EdgeList, int, int]:
    """Listing 2: read a hypergraph directly into adjoin (one-index) form.

    Returns ``(edge_list, nrealedges, nrealnodes)`` — the directed
    edge→node half; pass to
    :meth:`repro.structures.adjoin.AdjoinGraph.from_edgelist`.
    """
    bi = read_mm(path)
    n0, n1 = bi.vertex_cardinality
    return bi.to_adjoin_edgelist(), n0, n1

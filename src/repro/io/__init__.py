"""Hypergraph I/O: MatrixMarket files, generators, Table I stand-ins."""

from .datasets import (
    DATASETS,
    PAPER_TABLE1,
    DatasetStats,
    dataset_stats,
    load,
    table1,
)
from .generators import (
    community_hypergraph,
    configuration_model_hypergraph,
    path_hypergraph,
    powerlaw_hypergraph,
    star_hypergraph,
    uniform_random_hypergraph,
)
from .csv import read_incidence_csv, write_incidence_csv
from .dot import bipartite_dot, linegraph_dot
from .hygra import read_hygra, write_hygra
from .json_io import jsonify, read_json, write_json
from .loader import load_hypergraph, read_any, write_any
from .pipeline import (
    communities_to_hypergraph,
    hypergraph_from_graph_communities,
)
from .mmio import graph_reader, graph_reader_adjoin, read_mm, write_mm
from .snap import read_snap_edgelist

__all__ = [
    "DATASETS",
    "DatasetStats",
    "bipartite_dot",
    "PAPER_TABLE1",
    "communities_to_hypergraph",
    "community_hypergraph",
    "configuration_model_hypergraph",
    "dataset_stats",
    "graph_reader",
    "graph_reader_adjoin",
    "hypergraph_from_graph_communities",
    "jsonify",
    "linegraph_dot",
    "load",
    "load_hypergraph",
    "path_hypergraph",
    "powerlaw_hypergraph",
    "read_hygra",
    "read_incidence_csv",
    "read_any",
    "read_json",
    "read_snap_edgelist",
    "read_mm",
    "star_hypergraph",
    "table1",
    "uniform_random_hypergraph",
    "write_any",
    "write_hygra",
    "write_incidence_csv",
    "write_json",
    "write_mm",
]

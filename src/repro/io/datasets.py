"""Table I dataset stand-ins (seeded, laptop-scale).

The paper evaluates on six hypergraphs (Table I): four social-network
hypergraphs (com-Orkut, Friendster, Orkut-group, LiveJournal), one web
hypergraph, and one synthetic uniform hypergraph (Rand1).  The originals
range from 1.6M to 100M hyperedges — far beyond a pure-Python single-core
reproduction — so this module generates **scaled stand-ins** that preserve
the properties the experiments actually exercise (DESIGN.md §2):

* the |V| : |E| ratio and the average degrees of both sides,
* the *skew class*: heavy-tailed hyperedge sizes/node degrees for every
  real-world row, uniform for Rand1,
* the provenance: community-materialization for the SNAP-derived inputs,
  bipartite power-law for the KONECT ones, Hygra's uniform recipe for
  Rand1.

Scale factors are fixed per dataset (≈1/400 – 1/8000 of the original) so
each stand-in lands at ~30–70k incidences.  ``table1()`` regenerates the
paper's Table I over the stand-ins; ``PAPER_TABLE1`` holds the published
numbers for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

from .generators import (
    community_hypergraph,
    powerlaw_hypergraph,
    uniform_random_hypergraph,
)

__all__ = [
    "DATASETS",
    "PAPER_TABLE1",
    "DatasetStats",
    "dataset_stats",
    "load",
    "table1",
]


@dataclass(frozen=True)
class DatasetStats:
    """One Table I row: sizes, average and maximum degrees of both sides."""

    name: str
    num_nodes: int  # |V|
    num_edges: int  # |E|
    avg_node_degree: float  # d̄_v
    avg_edge_size: float  # d̄_e
    max_node_degree: int  # Δ_v
    max_edge_size: int  # Δ_e

    def row(self) -> tuple:
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            round(self.avg_node_degree, 1),
            round(self.avg_edge_size, 1),
            self.max_node_degree,
            self.max_edge_size,
        )


#: Published Table I values (degrees as printed; sizes in raw counts).
PAPER_TABLE1: dict[str, DatasetStats] = {
    "com-orkut": DatasetStats("com-orkut", 2_300_000, 15_300_000, 46, 7, 3_000, 9_100),
    "friendster": DatasetStats("friendster", 7_900_000, 1_600_000, 3, 14, 1_700, 9_300),
    "orkut-group": DatasetStats("orkut-group", 2_800_000, 8_700_000, 118, 37, 40_000, 318_000),
    "livejournal": DatasetStats("livejournal", 3_200_000, 7_500_000, 35, 15, 300, 1_100_000),
    "web": DatasetStats("web", 27_700_000, 12_800_000, 5, 11, 1_100_000, 11_600_000),
    "rand1": DatasetStats("rand1", 100_000_000, 100_000_000, 10, 10, 34, 10),
}


@dataclass(frozen=True)
class _Spec:
    name: str
    kind: str  # 'social' | 'web' | 'synthetic'
    build: Callable[[], BiEdgeList]
    scale: str  # human-readable scale factor vs the original


DATASETS: dict[str, _Spec] = {
    "com-orkut": _Spec(
        "com-orkut",
        "social",
        lambda: community_hypergraph(
            num_communities=7650, num_nodes=1150,
            mean_community_size=7.0, seed=101,
        ),
        "1/2000",
    ),
    "friendster": _Spec(
        "friendster",
        "social",
        lambda: community_hypergraph(
            num_communities=2000, num_nodes=9875,
            mean_community_size=14.0, locality=0.7, seed=102,
        ),
        "1/800",
    ),
    "orkut-group": _Spec(
        "orkut-group",
        "social",
        lambda: community_hypergraph(
            num_communities=1087, num_nodes=350,
            mean_community_size=58.0, locality=0.8, seed=103,
        ),
        "1/8000",
    ),
    "livejournal": _Spec(
        "livejournal",
        "social",
        lambda: powerlaw_hypergraph(
            num_edges=3750, num_nodes=1600,
            mean_edge_size=28.0, exponent=1.9, seed=104,
        ),
        "1/2000",
    ),
    "web": _Spec(
        "web",
        "web",
        lambda: powerlaw_hypergraph(
            num_edges=6400, num_nodes=13850,
            mean_edge_size=20.0, exponent=1.7, seed=105,
        ),
        "1/2000",
    ),
    "rand1": _Spec(
        "rand1",
        "synthetic",
        lambda: uniform_random_hypergraph(
            num_edges=5000, num_nodes=5000, edge_size=10, seed=106,
        ),
        "1/20000",
    ),
}

_CACHE: dict[str, BiEdgeList] = {}


def load(name: str) -> BiEdgeList:
    """Generate (and memoize) a stand-in dataset by Table I name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    if key not in _CACHE:
        _CACHE[key] = DATASETS[key].build()
    return _CACHE[key]


def dataset_stats(name: str, el: BiEdgeList | None = None) -> DatasetStats:
    """Compute the Table I columns for a stand-in (or a supplied edge list)."""
    el = load(name) if el is None else el
    h = BiAdjacency.from_biedgelist(el)
    node_deg = h.node_degrees()
    edge_sizes = h.edge_sizes()
    return DatasetStats(
        name=name,
        num_nodes=h.num_hypernodes(),
        num_edges=h.num_hyperedges(),
        avg_node_degree=float(node_deg.mean()) if node_deg.size else 0.0,
        avg_edge_size=float(edge_sizes.mean()) if edge_sizes.size else 0.0,
        max_node_degree=int(node_deg.max()) if node_deg.size else 0,
        max_edge_size=int(edge_sizes.max()) if edge_sizes.size else 0,
    )


def table1(names: list[str] | None = None) -> list[DatasetStats]:
    """Regenerate Table I (measured over the stand-ins), paper row order."""
    order = list(DATASETS) if names is None else [n.lower() for n in names]
    return [dataset_stats(n) for n in order]


def skewness(el: BiEdgeList) -> float:
    """Δ_e / d̄_e — the skew indicator the partitioning ablations sweep."""
    h = BiAdjacency.from_biedgelist(el)
    sizes = h.edge_sizes()
    mean = float(sizes.mean()) if sizes.size else 0.0
    return float(sizes.max()) / mean if mean else 0.0


def _self_check() -> None:  # pragma: no cover - manual sanity hook
    for name in DATASETS:
        stats = dataset_stats(name)
        paper = PAPER_TABLE1[name]
        ratio_ours = stats.num_nodes / max(stats.num_edges, 1)
        ratio_paper = paper.num_nodes / paper.num_edges
        assert 0.2 < ratio_ours / ratio_paper < 5.0, name

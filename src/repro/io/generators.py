"""Seeded hypergraph generators — the reproduction's dataset factory.

Three families, matching the provenance of the paper's Table I inputs:

* :func:`uniform_random_hypergraph` — Hygra's random generator: each
  hyperedge draws its members uniformly (the **Rand1** recipe; uniform
  degree distribution, single giant component at the paper's density);
* :func:`powerlaw_hypergraph` — skewed hyperedge sizes (truncated Zipf)
  with preferential hypernode attachment, reproducing the "skewed
  hyperedge degree distribution" the paper reports for every real-world
  input (social/web stand-ins);
* :func:`community_hypergraph` — the SNAP pipeline stand-in: plant
  overlapping communities over a node universe and materialize each
  community as one hyperedge (how com-Orkut/Friendster hypergraphs were
  built in [25]).

Everything is driven by an explicit seed; the Table I stand-ins in
:mod:`repro.io.datasets` pin their seeds so every run of the benchmarks
sees identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.structures.edgelist import BiEdgeList

__all__ = [
    "uniform_random_hypergraph",
    "powerlaw_hypergraph",
    "community_hypergraph",
    "chung_lu_hypergraph",
    "configuration_model_hypergraph",
    "star_hypergraph",
    "path_hypergraph",
]


def uniform_random_hypergraph(
    num_edges: int,
    num_nodes: int,
    edge_size: int,
    seed: int = 0,
) -> BiEdgeList:
    """Every hyperedge draws ``edge_size`` distinct hypernodes uniformly.

    The Rand1 recipe (§IV-B): uniform node-degree distribution, no skew.
    """
    if edge_size > num_nodes:
        raise ValueError("edge_size cannot exceed num_nodes")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), edge_size)
    # vectorized sampling-without-replacement per edge: argpartition of
    # random keys would be O(E·V); instead draw with replacement and fix
    # collisions per edge (few, for edge_size << num_nodes)
    cols = rng.integers(0, num_nodes, size=num_edges * edge_size, dtype=np.int64)
    cols = cols.reshape(num_edges, edge_size)
    for i in range(num_edges):  # collision repair, rarely triggered
        row = cols[i]
        uniq = np.unique(row)
        while uniq.size < edge_size:
            extra = rng.integers(0, num_nodes, size=edge_size - uniq.size)
            uniq = np.unique(np.concatenate([uniq, extra]))
        cols[i] = uniq[:edge_size]
    return BiEdgeList(
        rows, cols.reshape(-1), n0=num_edges, n1=num_nodes
    ).deduplicate()


def _zipf_sizes(
    rng: np.random.Generator,
    count: int,
    mean_target: float,
    exponent: float,
    max_size: int,
) -> np.ndarray:
    """Truncated-Zipf sizes rescaled toward a target mean (≥ 1 each)."""
    raw = rng.zipf(exponent, size=count).astype(np.float64)
    raw = np.minimum(raw, max_size)
    scale = mean_target / raw.mean()
    sizes = np.maximum(1, np.round(raw * scale)).astype(np.int64)
    return np.minimum(sizes, max_size)


def powerlaw_hypergraph(
    num_edges: int,
    num_nodes: int,
    mean_edge_size: float = 8.0,
    exponent: float = 2.0,
    seed: int = 0,
) -> BiEdgeList:
    """Skewed hypergraph: Zipf hyperedge sizes + preferential node choice.

    Node popularity follows a Zipf law as well, so both the hyperedge-size
    and the node-degree distributions come out heavy-tailed — the shape
    class of all real-world rows of Table I.
    """
    rng = np.random.default_rng(seed)
    sizes = _zipf_sizes(rng, num_edges, mean_edge_size, exponent, num_nodes)
    # preferential attachment: node v drawn with probability ∝ (v+1)^-a,
    # then shuffled so popularity is not correlated with ID
    weights = 1.0 / np.arange(1, num_nodes + 1, dtype=np.float64)
    weights /= weights.sum()
    popularity = rng.permutation(num_nodes)
    total = int(sizes.sum())
    draws = popularity[
        rng.choice(num_nodes, size=total, replace=True, p=weights)
    ]
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), sizes)
    return BiEdgeList(rows, draws, n0=num_edges, n1=num_nodes).deduplicate()


def community_hypergraph(
    num_communities: int,
    num_nodes: int,
    mean_community_size: float = 10.0,
    locality: float = 0.9,
    exponent: float = 2.0,
    seed: int = 0,
) -> BiEdgeList:
    """SNAP-pipeline stand-in: planted overlapping communities as hyperedges.

    Each community picks a home region of the node space and draws
    ``locality`` of its members locally (dense overlap with neighboring
    communities) and the rest globally (long-range bridges) — producing
    the many-components / giant-component structure of the curated social
    inputs.
    """
    rng = np.random.default_rng(seed)
    sizes = _zipf_sizes(
        rng, num_communities, mean_community_size, exponent, num_nodes
    )
    # skewed center popularity: a few hot regions host many communities,
    # giving their nodes the heavy-tailed degrees of Table I's social rows
    pop = 1.0 / np.arange(1, num_nodes + 1, dtype=np.float64) ** 0.8
    pop /= pop.sum()
    hot = rng.permutation(num_nodes)
    centers = hot[rng.choice(num_nodes, size=num_communities, p=pop)]
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    for c in range(num_communities):
        k = int(sizes[c])
        n_local = int(round(k * locality))
        n_global = k - n_local
        # local members: without replacement from a window ~2k wide
        window = min(max(2 * k, k + 2), num_nodes)
        offsets = rng.choice(window, size=min(n_local, window), replace=False)
        local_members = (centers[c] + offsets) % num_nodes
        global_members = rng.integers(0, num_nodes, size=n_global)
        members = np.unique(np.concatenate([local_members, global_members]))
        rows_parts.append(np.full(members.size, c, dtype=np.int64))
        cols_parts.append(members.astype(np.int64))
    return BiEdgeList(
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        n0=num_communities,
        n1=num_nodes,
    )


def chung_lu_hypergraph(
    edge_sizes: np.ndarray,
    node_weights: np.ndarray,
    seed: int = 0,
) -> BiEdgeList:
    """Chung–Lu style hypergraph with prescribed shape sequences.

    Hyperedge *e* draws ``edge_sizes[e]`` member samples with node *v*
    chosen with probability ∝ ``node_weights[v]`` (duplicates within an
    edge collapse, so realized sizes are ≤ targets — the standard
    Chung–Lu behaviour).  Expected node degrees are proportional to
    ``node_weights``; use a real graph's degree sequence to clone its
    shape at any scale.
    """
    rng = np.random.default_rng(seed)
    edge_sizes = np.asarray(edge_sizes, dtype=np.int64)
    node_weights = np.asarray(node_weights, dtype=np.float64)
    if edge_sizes.ndim != 1 or node_weights.ndim != 1:
        raise ValueError("edge_sizes and node_weights must be 1-D")
    if edge_sizes.size and edge_sizes.min() < 0:
        raise ValueError("edge sizes must be non-negative")
    if node_weights.size == 0 or node_weights.min() < 0 or (
        node_weights.sum() <= 0
    ):
        raise ValueError("node_weights must be non-negative, not all zero")
    p = node_weights / node_weights.sum()
    num_edges = edge_sizes.size
    num_nodes = node_weights.size
    total = int(edge_sizes.sum())
    draws = rng.choice(num_nodes, size=total, replace=True, p=p)
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), edge_sizes)
    return BiEdgeList(
        rows, draws, n0=num_edges, n1=num_nodes
    ).deduplicate()


def configuration_model_hypergraph(
    edge_sizes: np.ndarray,
    node_degrees: np.ndarray,
    seed: int = 0,
    swap_factor: int = 10,
) -> BiEdgeList:
    """Degree-preserving null model: exact sequences on both sides.

    The bipartite configuration model — stub matching of the given
    hyperedge-size and hypernode-degree sequences (their sums must agree),
    followed by ``swap_factor × incidences`` double-edge swaps that
    randomize the wiring while *exactly* preserving both sequences and
    never introducing duplicate incidences.  The standard null model for
    "is this s-component structure more than degrees?" questions.
    """
    edge_sizes = np.asarray(edge_sizes, dtype=np.int64)
    node_degrees = np.asarray(node_degrees, dtype=np.int64)
    if edge_sizes.ndim != 1 or node_degrees.ndim != 1:
        raise ValueError("sequences must be 1-D")
    if (edge_sizes.size and edge_sizes.min() < 0) or (
        node_degrees.size and node_degrees.min() < 0
    ):
        raise ValueError("sequences must be non-negative")
    total = int(edge_sizes.sum())
    if total != int(node_degrees.sum()):
        raise ValueError(
            f"sequence sums disagree: {total} vs {int(node_degrees.sum())}"
        )
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(edge_sizes.size, dtype=np.int64), edge_sizes)
    cols = np.repeat(
        np.arange(node_degrees.size, dtype=np.int64), node_degrees
    )
    rng.shuffle(cols)
    # repair stub-matching collisions (duplicate (edge, node) incidences)
    # and then randomize with duplicate-avoiding double-edge swaps
    occupied = set(zip(rows.tolist(), cols.tolist()))
    if len(occupied) < total:  # collisions exist: resolve by swapping
        occupied = _repair_duplicates(rows, cols, rng)
    m = rows.size
    for _ in range(swap_factor * m):
        i, j = rng.integers(0, m, size=2)
        if i == j:
            continue
        a, b = int(rows[i]), int(cols[i])
        c, d = int(rows[j]), int(cols[j])
        if a == c or b == d:
            continue
        if (a, d) in occupied or (c, b) in occupied:
            continue
        occupied.discard((a, b))
        occupied.discard((c, d))
        occupied.add((a, d))
        occupied.add((c, b))
        cols[i], cols[j] = d, b
    return BiEdgeList(
        rows, cols, n0=edge_sizes.size, n1=node_degrees.size
    )


def _repair_duplicates(
    rows: np.ndarray, cols: np.ndarray, rng: np.random.Generator,
    tries_per_duplicate: int = 2000,
) -> set[tuple[int, int]]:
    """Resolve stub-matching collisions with targeted *safe* swaps.

    For every duplicated incidence, pick random partners until a
    double-edge swap strictly reduces multiplicity without creating new
    duplicates.  Raises ``ValueError`` if a duplicate cannot be placed
    (e.g. a hyperedge larger than the node universe makes the sequences
    unrealizable without multi-incidence).
    """
    from collections import Counter

    m = rows.size
    count: Counter = Counter(zip(rows.tolist(), cols.tolist()))
    dup_positions = [
        k for k in range(m)
        if count[(int(rows[k]), int(cols[k]))] > 1
    ]
    for k in dup_positions:
        pair_k = (int(rows[k]), int(cols[k]))
        if count[pair_k] <= 1:
            continue  # an earlier swap already fixed this duplicate
        for _ in range(tries_per_duplicate):
            j = int(rng.integers(0, m))
            pair_j = (int(rows[j]), int(cols[j]))
            if pair_j == pair_k:
                continue
            new_k = (pair_k[0], pair_j[1])
            new_j = (pair_j[0], pair_k[1])
            if count[new_k] or count[new_j]:
                continue
            count[pair_k] -= 1
            count[pair_j] -= 1
            cols[k], cols[j] = cols[j], cols[k]
            count[new_k] += 1
            count[new_j] += 1
            break
        else:
            raise ValueError(
                "could not realize the degree sequences without duplicate "
                "incidences (a hyperedge may exceed the node universe)"
            )
    return {pair for pair, c in count.items() if c}


def star_hypergraph(num_edges: int, hub: int = 0) -> BiEdgeList:
    """Every hyperedge = {hub, leaf_i}: the s=1 line graph is a clique."""
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), 2)
    leaves = np.arange(1, num_edges + 1, dtype=np.int64) + hub
    cols = np.empty(2 * num_edges, dtype=np.int64)
    cols[0::2] = hub
    cols[1::2] = leaves
    return BiEdgeList(rows, cols, n0=num_edges, n1=num_edges + 1 + hub)


def path_hypergraph(num_edges: int, overlap: int = 1, size: int = 3) -> BiEdgeList:
    """Chain of hyperedges, consecutive ones sharing ``overlap`` nodes.

    The s-line graph is a path for ``s ≤ overlap`` and empty above — handy
    for exact expectations in tests.
    """
    if not 0 < overlap < size:
        raise ValueError("need 0 < overlap < size")
    stride = size - overlap
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), size)
    starts = np.arange(num_edges, dtype=np.int64) * stride
    cols = (starts[:, None] + np.arange(size, dtype=np.int64)[None, :]).reshape(-1)
    return BiEdgeList(rows, cols, n0=num_edges)

"""The repo-specific invariant lint rules (R001–R005).

Each rule encodes one correctness invariant the paper states but Python
cannot enforce:

* **R001** — CSR index sets (``indptr``/``indices`` buffers) are frozen
  after construction (paper §II, representations).  Only
  ``repro.structures`` and ``repro.dynamic`` may write them.
* **R002** — an attribute ever *assigned* under ``with self._lock`` is
  lock-guarded shared state; reading or writing it outside a ``with``
  on the same lock (in the same class) is a data race in the serving
  stack.
* **R003** — functions submitted to ``ParallelRuntime.parallel_for`` /
  ``parallel_reduce`` must only mutate thread-local state (Algorithms
  1–2's per-thread queues); shared-container mutation of closure
  variables must be returned per-chunk and combined after the phase, or
  routed through :mod:`repro.parallel.atomics`.
* **R004** — no bare or blanket ``except`` — a swallowed programming
  error in a serving thread silently corrupts the session.
* **R005** — public construction/algorithm entry points accept the
  unified ``runtime``/``tracer``/``metrics`` kwarg trio, and the
  deprecated ``edges=`` spelling (superseded by ``over_edges=``) does
  not spread.

Every rule carries a ``code``, a one-line ``summary``, and an autofix
``hint``; findings suppress with ``# repro: noqa-RXXX`` (see
:mod:`repro.check.lint` for the suppression syntax).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding

__all__ = [
    "ALL_RULES",
    "CORE_RULES",
    "LintRule",
    "ModuleContext",
    "TreeContext",
    "TreeRule",
]

#: attribute names holding frozen CSR index buffers (R001)
_CSR_BUFFERS = frozenset({"indptr", "indices"})

#: path components whose modules own CSR construction/mutation (R001)
_CSR_OWNERS = ("structures", "dynamic")

#: container methods that mutate their receiver in place (R002/R003)
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "update",
        "setdefault", "pop", "popitem", "remove", "discard", "clear",
        "push", "move_to_end",
    }
)

#: the unified instrumentation kwarg trio (R005)
_TRIO = frozenset({"runtime", "tracer", "metrics"})


class ModuleContext:
    """One parsed module handed to every rule."""

    def __init__(self, tree: ast.Module, path: str, relpath: str) -> None:
        self.tree = tree
        self.path = path
        #: forward-slash path used for location-scoped rules; for files
        #: inside the repo this is relative to the package root
        self.relpath = relpath.replace("\\", "/")

    def in_any(self, parts: tuple[str, ...]) -> bool:
        pieces = self.relpath.split("/")
        return any(p in pieces for p in parts)


class LintRule:
    """Base class: subclasses set ``code``/``summary``/``hint``."""

    code = "R000"
    summary = ""
    hint = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, **extra
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            extra=extra,
        )


class TreeContext:
    """Every parsed module of one lint run, for cross-file rules."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = list(modules)

    def find(self, suffix: str) -> ModuleContext | None:
        """The module whose relpath ends with ``suffix`` (or ``None``)."""
        for mod in self.modules:
            rel = mod.relpath
            if rel == suffix or rel.endswith("/" + suffix):
                return mod
        return None


class TreeRule:
    """A rule that inspects the whole tree at once (cross-file diffs).

    Tree rules run after every module has been parsed; their findings
    land on whatever file carries the offending declaration, and the
    usual ``# repro: noqa-RXXX`` suppressions of that file apply.
    """

    code = "R300"
    summary = ""
    hint = ""

    def check(self, tree: TreeContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        line: int,
        message: str,
        col: int = 0,
        **extra,
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=path,
            line=line,
            col=col,
            message=message,
            hint=self.hint,
            extra=extra,
        )


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

def _self_attr_root(node: ast.AST) -> str | None:
    """Root attribute name of a ``self.a``/``self.a.b``/``self.a[i].b`` chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def _name_root(node: ast.AST) -> str | None:
    """Root bare name of an ``x``/``x[i]``/``x.attr`` chain (no ``self``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _store_targets(node: ast.AST) -> list[ast.AST]:
    """Assignment-target expressions of any statement that stores."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _flatten_targets(targets: list[ast.AST]) -> list[ast.AST]:
    out: list[ast.AST] = []
    for t in targets:
        if isinstance(t, (ast.Tuple, ast.List)):
            out.extend(_flatten_targets(list(t.elts)))
        elif isinstance(t, ast.Starred):
            out.append(t.value)
        else:
            out.append(t)
    return out


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs or lambdas."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.append(child)


def _is_lock_attr(expr: ast.AST) -> str | None:
    """``'_lock'`` when ``expr`` is ``self.<something containing 'lock'>``."""
    attr = _self_attr_root(expr) if isinstance(expr, ast.Attribute) else None
    if attr is not None and "lock" in attr.lower():
        return attr
    return None


def _function_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = fn.args
    names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


def _defaulted_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names that carry a default value (keyword-usable)."""
    a = fn.args
    out: set[str] = set()
    positional = a.posonlyargs + a.args
    for p, d in zip(reversed(positional), reversed(a.defaults)):
        if d is not None:
            out.add(p.arg)
    for p, d in zip(a.kwonlyargs, a.kw_defaults):
        if d is not None:
            out.add(p.arg)
    return out


# ---------------------------------------------------------------------------
# R001 — frozen CSR buffers
# ---------------------------------------------------------------------------

class FrozenCSRRule(LintRule):
    code = "R001"
    summary = (
        "CSR index buffers (indptr/indices) are frozen after construction; "
        "only repro.structures and repro.dynamic may write them"
    )
    hint = (
        "build a new CSR (or go through repro.structures/repro.dynamic) "
        "instead of mutating index buffers in place"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_any(_CSR_OWNERS):
            return
        for node in ast.walk(ctx.tree):
            for target in _flatten_targets(_store_targets(node)):
                buffer = self._buffer_in_chain(target)
                if buffer is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"write to frozen CSR buffer '.{buffer}' outside "
                        "repro.structures/repro.dynamic",
                        buffer=buffer,
                    )

    @staticmethod
    def _buffer_in_chain(node: ast.AST) -> str | None:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute) and node.attr in _CSR_BUFFERS:
                return node.attr
            node = node.value
        return None


# ---------------------------------------------------------------------------
# R002 — lock-guarded attributes never touched outside the lock
# ---------------------------------------------------------------------------

class _LockScopeWalker:
    """Walks a method body tracking which ``self.*lock*`` locks are held.

    Nested function definitions reset the held set — a closure defined
    under the lock may run long after the lock is released (the
    ``execute_batch`` body pattern).
    """

    def __init__(self) -> None:
        self.held: frozenset[str] = frozenset()

    def walk(self, body: list[ast.stmt], visit) -> None:
        for stmt in body:
            self._stmt(stmt, visit)

    def _stmt(self, node: ast.stmt, visit) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            saved = self.held
            # items are entered left to right: later context expressions
            # are evaluated with earlier locks already held
            for item in node.items:
                visit(item.context_expr, self.held)
                lock = _is_lock_attr(item.context_expr)
                if lock is not None:
                    self.held = self.held | {lock}
            self.walk(node.body, visit)
            self.held = saved
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            saved = self.held
            self.held = frozenset()
            self.walk(node.body, visit)
            self.held = saved
            return
        if any(
            isinstance(child, ast.stmt) for child in ast.iter_child_nodes(node)
        ):
            # compound statement (if/for/while/try/match): visit header
            # expressions, recurse into nested statements with the same
            # held set (ExceptHandler / match_case carry their own bodies)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._stmt(child, visit)
                elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._stmt(sub, visit)
                        else:
                            visit(sub, self.held)
                else:
                    visit(child, self.held)
            return
        # simple statement: hand the whole node over so assignment
        # targets (self.x = ..., self.x += ...) are seen as stores
        visit(node, self.held)


class LockDisciplineRule(LintRule):
    code = "R002"
    summary = (
        "attributes assigned under `with self._lock` are lock-guarded "
        "shared state; never read or write them outside that lock"
    )
    hint = (
        "wrap the access in `with self.<lock>:` — or, for helpers the "
        "caller invokes with the lock held, put `# repro: noqa-R002` on "
        "the `def` line with the invariant that makes it safe"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _methods(
        self, cls: ast.ClassDef
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded: dict[str, set[str]] = {}

        def collect(expr: ast.AST, held: frozenset[str]) -> None:
            if not held:
                return
            for sub in _walk_shallow(expr):
                for attr in self._written_roots(sub):
                    if "lock" not in attr.lower():
                        guarded.setdefault(attr, set()).update(held)

        for method in self._methods(cls):
            if method.name == "__init__":
                continue
            walker = _LockScopeWalker()
            # statements (stores) are visited via the walker's recursion;
            # feed it a visitor that also inspects statement expressions
            self._walk_method(method, walker, collect)

        if not guarded:
            return

        findings: list[Finding] = []

        def flag(expr: ast.AST, held: frozenset[str]) -> None:
            for sub in _walk_shallow(expr):
                attr = None
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name
                ) and sub.value.id == "self":
                    attr = sub.attr
                if attr is None or attr not in guarded:
                    continue
                if guarded[attr] & held:
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        sub,
                        f"'{cls.name}.{attr}' is guarded by "
                        f"'{'/'.join(sorted(guarded[attr]))}' but accessed "
                        "without holding it",
                        attribute=attr,
                        locks=sorted(guarded[attr]),
                    )
                )

        for method in self._methods(cls):
            if method.name == "__init__":
                continue
            walker = _LockScopeWalker()
            self._walk_method(method, walker, flag)
        # one finding per (line, attr): a chained expression can surface
        # the same access through several nested nodes
        seen: set[tuple[int, str]] = set()
        for f in findings:
            key = (f.line, f.extra.get("attribute", ""))
            if key not in seen:
                seen.add(key)
                yield f

    @staticmethod
    def _walk_method(method, walker: _LockScopeWalker, visit) -> None:
        def stmt_visit(expr: ast.AST, held: frozenset[str]) -> None:
            visit(expr, held)

        walker.walk(method.body, stmt_visit)

    @staticmethod
    def _written_roots(node: ast.AST) -> Iterator[str]:
        """Root ``self.X`` attributes a statement/expression writes."""
        for target in _flatten_targets(_store_targets(node)):
            root = _self_attr_root(target)
            if root is not None:
                yield root
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _MUTATORS:
            root = _self_attr_root(node.func.value)
            if root is not None:
                yield root


# ---------------------------------------------------------------------------
# R003 — no shared-container mutation inside parallel bodies
# ---------------------------------------------------------------------------

class ParallelBodyMutationRule(LintRule):
    code = "R003"
    summary = (
        "functions submitted to ParallelRuntime must not mutate shared "
        "containers captured from the enclosing scope"
    )
    hint = (
        "return per-chunk results (TaskResult) and combine after the "
        "phase, or route shared writes through repro.parallel.atomics"
    )

    _SUBMIT = frozenset({"parallel_for", "parallel_reduce"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        submitted_names: set[str] = set()
        submitted_lambdas: list[ast.Lambda] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SUBMIT
            ):
                continue
            body_arg: ast.AST | None = None
            if len(node.args) >= 2:
                body_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "body":
                        body_arg = kw.value
            if isinstance(body_arg, ast.Name):
                submitted_names.add(body_arg.id)
            elif isinstance(body_arg, ast.Lambda):
                submitted_lambdas.append(body_arg)

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in submitted_names
            ):
                yield from self._check_body(ctx, node)
        for lam in submitted_lambdas:
            yield from self._check_body(ctx, lam)

    def _check_body(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> Iterator[Finding]:
        local = self._local_names(fn)
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        label = getattr(fn, "name", "<lambda>")
        for stmt in body:
            for node in ast.walk(stmt):  # type: ignore[arg-type]
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs judged when themselves submitted
                for target in _flatten_targets(_store_targets(node)):
                    if isinstance(target, ast.Name):
                        continue  # plain local rebind
                    root = _name_root(target)
                    if root is not None and root not in local:
                        yield self.finding(
                            ctx,
                            node,
                            f"parallel body '{label}' mutates shared "
                            f"'{root}' captured from the enclosing scope",
                            shared=root,
                        )
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ) and node.func.attr in _MUTATORS:
                    root = _name_root(node.func.value)
                    if root is not None and root not in local:
                        yield self.finding(
                            ctx,
                            node,
                            f"parallel body '{label}' calls "
                            f"'{root}.{node.func.attr}(...)' on a shared "
                            "container captured from the enclosing scope",
                            shared=root,
                        )

    @staticmethod
    def _local_names(
        fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> set[str]:
        local: set[str] = {p.arg for p in (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )}
        if fn.args.vararg:
            local.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            local.add(fn.args.kwarg.arg)
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        for stmt in body:
            for node in ast.walk(stmt):  # type: ignore[arg-type]
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    local.add(node.id)
                elif isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name
                ):
                    local.add(node.target.id)
                elif isinstance(node, ast.ExceptHandler) and node.name:
                    local.add(node.name)
        return local


# ---------------------------------------------------------------------------
# R004 — no bare / blanket except
# ---------------------------------------------------------------------------

class BlanketExceptRule(LintRule):
    code = "R004"
    summary = "no bare `except:` or blanket `except Exception:`"
    hint = (
        "catch the specific exceptions the block can raise; a swallowed "
        "programming error in a serving thread corrupts the session "
        "silently"
    )

    _BLANKET = frozenset({"Exception", "BaseException"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(ctx, node, "bare `except:`")
                continue
            exprs = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                name = expr.id if isinstance(expr, ast.Name) else None
                if name in self._BLANKET:
                    yield self.finding(
                        ctx, node, f"blanket `except {name}:`"
                    )


# ---------------------------------------------------------------------------
# R005 — unified instrumentation trio; no deprecated edges=
# ---------------------------------------------------------------------------

class EntryPointSignatureRule(LintRule):
    code = "R005"
    summary = (
        "public entry points accept the unified runtime/tracer/metrics "
        "kwarg trio and never the deprecated edges= spelling"
    )
    hint = (
        "add the missing tracer=None/metrics=None parameters (forwarding "
        "to repro.obs), and spell the side switch over_edges="
    )

    #: the trio requirement applies to the construction/algorithm surface
    _TRIO_SCOPES = ("linegraph", "algorithms")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        trio_scope = ctx.in_any(self._TRIO_SCOPES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = _function_params(node)
            defaulted = _defaulted_params(node)
            if "edges" in defaulted:
                yield self.finding(
                    ctx,
                    node,
                    f"'{node.name}' accepts the deprecated edges= "
                    "spelling (superseded by over_edges=)",
                )
            if trio_scope and "runtime" in defaulted:
                missing = sorted(_TRIO - set(params))
                if missing:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{node.name}' takes runtime= but is missing "
                        f"{', '.join(missing + [''])[:-2]} of the unified "
                        "instrumentation trio",
                        missing=missing,
                    )


#: the first-generation per-module rules (R001–R005); the full registry
#: including the v2 families lives in :mod:`repro.check.registry`
CORE_RULES: tuple[LintRule, ...] = (
    FrozenCSRRule(),
    LockDisciplineRule(),
    ParallelBodyMutationRule(),
    BlanketExceptRule(),
    EntryPointSignatureRule(),
)

#: backward-compatible alias — prefer ``registry.MODULE_RULES``
ALL_RULES = CORE_RULES

"""repro.check — invariant lint pass + dynamic lock/race checkers.

Static pass (:mod:`repro.check.lint`): five repo-specific AST rules
(R001–R005) enforcing the paper's frozen-CSR, lock-discipline,
thread-local-mutation, and unified-signature invariants, with
``# repro: noqa-RXXX`` suppressions.

Dynamic pass: :class:`LockOrderMonitor` builds a lock-order graph and
reports inversions (L001); :class:`RaceDetector` + :class:`CheckedArray`
record per-task access sets during parallel phases and flag write/write
(D001) and read/write (D002) overlaps.  Off by default — enable with
``REPRO_CHECK=1`` or ``runtime.checked()``.

Everything reports through :class:`Finding` and the ``repro check`` CLI.
"""

from .findings import Finding
from .lint import LintReport, lint_paths, lint_source, select_rules
from .locks import CheckedLock, LockOrderMonitor, patch_threading
from .races import CheckedArray, RaceDetector
from .report import render_json, render_text, summary_line
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "CheckedArray",
    "CheckedLock",
    "Finding",
    "LintReport",
    "LockOrderMonitor",
    "RaceDetector",
    "lint_paths",
    "lint_source",
    "patch_threading",
    "render_json",
    "render_text",
    "select_rules",
    "summary_line",
]

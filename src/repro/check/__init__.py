"""repro.check — invariant lint pass + dynamic lock/race checkers.

Static pass (:mod:`repro.check.lint`), three generations of
repo-specific AST rules:

* **R001–R005** — the paper's frozen-CSR, lock-discipline,
  thread-local-mutation, and unified-signature invariants;
* **R101–R102** (:mod:`repro.check.asyncrules`) — async-safety: no
  blocking calls reachable from ``async def`` bodies, no ``await``
  under a threading lock;
* **R201** (:mod:`repro.check.lifecycle`) — resource lifecycle: every
  shm/mmap/WAL/socket acquisition flows into a ``with``, a
  ``try/finally`` close, or an owner with a close path;
* **R301–R304** (:mod:`repro.check.protocol_conformance`) —
  protocol conformance: the implemented wire surface (engine handlers,
  both front doors, error codes, version gates, docs/API.md tables)
  is diffed against the declarative ``repro.service.spec.SPEC``.

All suppress with ``# repro: noqa-RXXX — justification``; the
inventory is audited by ``repro check --list-suppressions``.

Dynamic pass: :class:`LockOrderMonitor` builds a lock-order graph and
reports inversions (L001); :class:`RaceDetector` + :class:`CheckedArray`
record per-task access sets during parallel phases and flag write/write
(D001) and read/write (D002) overlaps.  Off by default — enable with
``REPRO_CHECK=1`` or ``runtime.checked()``.

Everything reports through :class:`Finding` and the ``repro check`` CLI.
"""

from .findings import Finding
from .lint import (
    LintReport,
    Suppression,
    lint_paths,
    lint_source,
    parse_tree,
    select_rules,
)
from .locks import CheckedLock, LockOrderMonitor, patch_threading
from .protocol_conformance import conformance_summary
from .races import CheckedArray, RaceDetector
from .registry import ALL_RULES, MODULE_RULES, TREE_RULES
from .report import (
    render_conformance_table,
    render_json,
    render_suppressions,
    render_text,
    summary_line,
)

__all__ = [
    "ALL_RULES",
    "CheckedArray",
    "CheckedLock",
    "Finding",
    "LintReport",
    "LockOrderMonitor",
    "MODULE_RULES",
    "RaceDetector",
    "Suppression",
    "TREE_RULES",
    "conformance_summary",
    "lint_paths",
    "lint_source",
    "parse_tree",
    "patch_threading",
    "render_conformance_table",
    "render_json",
    "render_suppressions",
    "render_text",
    "select_rules",
    "summary_line",
]

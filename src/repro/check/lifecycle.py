"""Resource-lifecycle rule (R201) for the mmap/shm/WAL/socket layer.

The serving stack holds kernel-backed resources whose leak modes are
invisible to the garbage collector's happy path: POSIX shared-memory
segments (``SharedArray``/``SharedCSR``) survive the process, mmap
handles (``SlabFile``/``MappedArray``/``MappedCSR``) pin file pages,
``WriteAheadLog`` holds an open append handle, and ``SocketSession``
holds a live TCP connection.  **R201** checks, per function, that every
acquisition of one of these flows into a release:

* a ``with`` statement (``with SlabFile(...) as f:`` or ``with f:``);
* a closer call (``.close()`` / ``.stop()`` / ``.shutdown()`` /
  ``.release()`` / ``.finish()`` / ``.unlink()``) inside a ``finally``
  block — a closer *outside* ``finally`` is flagged separately, because
  it only covers the happy path;
* an **escape** that transfers ownership out of the function: the
  object is returned or yielded, stored on ``self`` (when the owning
  class has a verified close path), stored into a container or module
  registry (the ``_OPEN_SLABS`` pattern), aliased, or passed as an
  argument to another call (constructor injection — the callee owns it
  now).

The analysis is intraprocedural and deliberately conservative in the
escape direction: anything that *might* hand the resource off is
treated as a transfer, so R201 findings are the acquisitions that
provably stay local and still lack a guaranteed release.  Suppress
deliberate leaks (e.g. process-lifetime singletons) with
``# repro: noqa-R201`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import (
    LintRule,
    ModuleContext,
    _walk_shallow,
)

__all__ = ["LIFECYCLE_RULES", "ResourceLifecycleRule"]

#: constructors/factories whose result owns a kernel-backed resource
_FACTORIES = frozenset(
    {
        "SharedArray",
        "SharedCSR",
        "MappedArray",
        "MappedCSR",
        "SlabFile",
        "SlabWriter",
        "WriteAheadLog",
        "StoreHandle",
        "SocketSession",
        "ServiceClient",
        "open_store",
    }
)

#: method names that release a resource
_CLOSERS = frozenset(
    {"close", "stop", "shutdown", "release", "finish", "unlink", "terminate"}
)

#: methods that, defined on a class, make `self.attr = Factory(...)`
#: an owned acquisition with a close path
_OWNER_CLOSERS = _CLOSERS | {"__exit__", "__del__"}


def _factory_name(call: ast.Call) -> str | None:
    """The factory a call constructs, when it is one we track."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in _FACTORIES else None


def _contains_factory_call(node: ast.AST) -> ast.Call | None:
    """A tracked factory call anywhere inside ``node`` (comprehensions)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _factory_name(sub) is not None:
            return sub
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


class _Acquisition:
    __slots__ = ("name", "node", "factory", "container")

    def __init__(
        self, name: str, node: ast.AST, factory: str, container: bool
    ) -> None:
        self.name = name
        self.node = node
        self.factory = factory
        self.container = container


class ResourceLifecycleRule(LintRule):
    code = "R201"
    summary = (
        "SharedArray/MappedArray/SlabFile/StoreHandle/WriteAheadLog/"
        "SocketSession acquisitions must flow into a with, a "
        "try/finally close, or an owner with a close path"
    )
    hint = (
        "wrap the lifetime in `with` or `try/finally: x.close()`; if "
        "ownership genuinely transfers, return the handle or store it "
        "on an owner object that closes it"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls = self._owning_class(ctx.tree, node)
                yield from self._check_function(ctx, node, cls)

    @staticmethod
    def _owning_class(
        tree: ast.Module, fn: ast.AST
    ) -> ast.ClassDef | None:
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef) and fn in cls.body:
                return cls
        return None

    # -- per-function analysis ----------------------------------------------
    def _check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
    ) -> Iterator[Finding]:
        acquisitions = self._acquisitions(ctx, fn, cls)
        if not acquisitions:
            return
        nodes = [n for stmt in fn.body for n in _walk_shallow(stmt)]
        finally_nodes = self._finally_nodes(fn)
        for acq in acquisitions:
            if self._escapes(acq, nodes):
                continue
            if self._with_managed(acq, nodes):
                continue
            closers = self._closer_calls(acq, nodes)
            if not closers:
                yield self.finding(
                    ctx,
                    acq.node,
                    f"'{acq.name}' acquires a {acq.factory} that is "
                    "never closed in this function and never escapes it",
                    resource=acq.factory,
                    name=acq.name,
                )
            elif not any(id(c) in finally_nodes for c in closers):
                yield self.finding(
                    ctx,
                    acq.node,
                    f"'{acq.name}' ({acq.factory}) is closed only on "
                    "the happy path — an exception before the close "
                    "leaks it; move the close into try/finally",
                    resource=acq.factory,
                    name=acq.name,
                )

    def _acquisitions(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
    ) -> list[_Acquisition]:
        out: list[_Acquisition] = []
        for stmt in fn.body:
            for node in _walk_shallow(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue  # self.x / container stores judged as escapes
                if isinstance(node.value, ast.Call):
                    factory = _factory_name(node.value)
                    if factory is not None:
                        out.append(
                            _Acquisition(target.id, node, factory, False)
                        )
                        continue
                if isinstance(
                    node.value,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.List,
                     ast.Dict, ast.Set),
                ):
                    call = _contains_factory_call(node.value)
                    if call is not None:
                        out.append(
                            _Acquisition(
                                target.id,
                                node,
                                _factory_name(call) or "resource",
                                True,
                            )
                        )
        return out

    @staticmethod
    def _finally_nodes(fn: ast.AST) -> set[int]:
        """ids of every node living inside a ``finally`` or an
        ``except`` handler (the error-path release positions)."""
        out: set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    out.update(id(n) for n in ast.walk(stmt))
                for handler in node.handlers:
                    for stmt in handler.body:
                        out.update(id(n) for n in ast.walk(stmt))
        return out

    def _escapes(self, acq: _Acquisition, nodes: list[ast.AST]) -> bool:
        name = acq.name
        seen_acq = False
        for node in nodes:
            if node is acq.node:
                seen_acq = True
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None and name in _names_in(value):
                    return True
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if not seen_acq:
                    continue
                value = node.value
                if value is None or name not in _names_in(value):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    # self.x = name / registry[key] = name / alias = name
                    if isinstance(t, (ast.Attribute, ast.Subscript, ast.Name)):
                        return True
            elif isinstance(node, ast.Call):
                if self._transfers_ownership(node, name):
                    return True
        return False

    @staticmethod
    def _transfers_ownership(call: ast.Call, name: str) -> bool:
        """``name`` passed as an argument (not the closer receiver)."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == name
        ):
            return False  # a method call *on* the resource
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id == name:
                return True
            if isinstance(arg, ast.Starred) and isinstance(
                arg.value, ast.Name
            ) and arg.value.id == name:
                return True
        return False

    @staticmethod
    def _with_managed(acq: _Acquisition, nodes: list[ast.AST]) -> bool:
        for node in nodes:
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == acq.name:
                    return True
                if (
                    isinstance(expr, ast.Call)
                    and any(
                        isinstance(a, ast.Name) and a.id == acq.name
                        for a in expr.args
                    )
                ):
                    return True  # with closing(x): / contextlib wrappers
        return False

    def _closer_calls(
        self, acq: _Acquisition, nodes: list[ast.AST]
    ) -> list[ast.Call]:
        out: list[ast.Call] = []
        loop_vars = self._loop_vars_over(acq.name, nodes) if acq.container else set()
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _CLOSERS
            ):
                continue
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id == acq.name:
                out.append(node)
            elif acq.container:
                if isinstance(recv, ast.Name) and recv.id in loop_vars:
                    out.append(node)
                elif (
                    isinstance(recv, ast.Subscript)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == acq.name
                ):
                    out.append(node)
        return out

    @staticmethod
    def _loop_vars_over(name: str, nodes: list[ast.AST]) -> set[str]:
        """Loop/comprehension variables iterating over container ``name``."""
        out: set[str] = set()
        for node in nodes:
            iter_expr: ast.AST | None = None
            target: ast.AST | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr, target = node.iter, node.target
            elif isinstance(node, ast.comprehension):
                iter_expr, target = node.iter, node.target
            if iter_expr is None or name not in _names_in(iter_expr):
                continue
            if target is not None:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        return out


LIFECYCLE_RULES: tuple[LintRule, ...] = (ResourceLifecycleRule(),)

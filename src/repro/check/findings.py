"""Finding records shared by the static and dynamic checkers.

Every checker in :mod:`repro.check` — the AST lint pass, the lock-order
monitor, and the race detector — reports through the same
:class:`Finding` shape so the CLI, CI jobs, and tests consume one
format.  A finding is JSON-safe (:meth:`Finding.as_dict`) and renders as
a conventional ``path:line:col: CODE message`` line
(:meth:`Finding.format`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass
class Finding:
    """One checker diagnostic.

    ``rule`` is the machine-readable code (``R001``..``R005`` for the
    lint pass, ``L001`` for lock-order inversions, ``D001``/``D002`` for
    dynamic races).  ``suppressed`` marks findings silenced by a
    ``# repro: noqa-RXXX`` comment — they are still reported (so CI can
    audit suppressions) but never fail a run.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def format(self) -> str:
        tag = " [suppressed]" if self.suppressed else ""
        hint = f"  (hint: {self.hint})" if self.hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}{hint}{tag}"
        )

"""Dynamic lock-order checking (lockdep-style).

:class:`LockOrderMonitor` hands out checked wrappers around
``threading.Lock``/``threading.RLock``.  Every acquisition while other
checked locks are held adds a directed edge ``held -> acquired`` to a
lock-order graph; a cycle in that graph means two code paths acquire the
same locks in opposite orders — a potential deadlock — reported as an
``L001`` finding by :meth:`LockOrderMonitor.inversions`.

Re-entrant acquisition of the same RLock is excluded (it cannot
deadlock against itself), and edges record the first stack location that
created them so reports point at code.

:func:`patch_threading` monkeypatches ``threading.Lock``/``RLock`` for
the duration of a ``with`` block so existing subsystems (the service
cache/engine/store) get checked locks without code changes.  Caveat:
``threading.Condition`` objects created *inside* the block will wrap a
checked lock; their ``_acquire_restore``/``_release_save`` paths go
through the wrapper's ``__getattr__`` passthrough, which is correct but
unmonitored — prefer :class:`~repro.service.InProcessSession` (no
conditions) for smoke runs under the monitor.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Iterator

from .findings import Finding

__all__ = ["LockOrderMonitor", "CheckedLock", "patch_threading"]

#: real primitives, bound at import time so the monitor's own factories
#: keep working while threading.Lock/RLock are patched
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class CheckedLock:
    """A ``Lock``/``RLock`` that reports acquisitions to a monitor."""

    def __init__(self, monitor: "LockOrderMonitor", inner: Any, name: str) -> None:
        self._monitor = monitor
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor._on_acquire(self)
        return got

    def release(self) -> None:
        self._monitor._on_release(self)
        self._inner.release()

    __enter__ = acquire

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, attr: str) -> Any:
        # passthrough so Condition's _is_owned/_acquire_restore/
        # _release_save keep working against the real primitive
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"CheckedLock({self.name!r})"


class LockOrderMonitor:
    """Builds a lock-order graph from checked-lock acquisitions."""

    def __init__(self, capture_stacks: bool = True, stack_depth: int = 6) -> None:
        self._graph_lock = _REAL_LOCK()
        #: edge -> first acquisition site that created it
        self._edges: dict[tuple[str, str], str] = {}
        self._held = threading.local()
        self._counter = 0
        self._capture_stacks = capture_stacks
        self._stack_depth = stack_depth
        self.acquisitions = 0

    # -- factories ---------------------------------------------------

    def lock(self, name: str | None = None) -> CheckedLock:
        return CheckedLock(self, _REAL_LOCK(), self._name(name, "Lock"))

    def rlock(self, name: str | None = None) -> CheckedLock:
        return CheckedLock(self, _REAL_RLOCK(), self._name(name, "RLock"))

    def wrap(self, inner: Any, name: str | None = None) -> CheckedLock:
        return CheckedLock(self, inner, self._name(name, type(inner).__name__))

    def _name(self, name: str | None, kind: str) -> str:
        with self._graph_lock:
            self._counter += 1
            return name if name is not None else f"{kind}-{self._counter}"

    # -- acquisition tracking ---------------------------------------

    def _stack(self) -> list[CheckedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, lock: CheckedLock) -> None:
        stack = self._stack()
        if any(held is lock for held in stack):
            stack.append(lock)  # re-entrant RLock: no self-edge
            return
        site = ""
        if self._capture_stacks:
            frames = traceback.extract_stack(limit=self._stack_depth + 2)[:-2]
            if frames:
                f = frames[-1]
                site = f"{f.filename}:{f.lineno} in {f.name}"
        with self._graph_lock:
            self.acquisitions += 1
            for held in stack:
                if held.name != lock.name:
                    self._edges.setdefault((held.name, lock.name), site)
        stack.append(lock)

    def _on_release(self, lock: CheckedLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    # -- analysis ----------------------------------------------------

    def edges(self) -> dict[tuple[str, str], str]:
        with self._graph_lock:
            return dict(self._edges)

    def cycles(self) -> list[list[str]]:
        """Elementary cycles in the lock-order graph (DFS, deduped)."""
        edges = self.edges()
        adj: dict[str, list[str]] = {}
        for a, b in edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        cycles: list[list[str]] = []
        seen: set[frozenset[str]] = set()

        def dfs(node: str, path: list[str], on_path: set[str]) -> None:
            for nxt in adj[node]:
                if nxt in on_path:
                    cycle = path[path.index(nxt):]
                    key = frozenset(cycle)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(cycle + [nxt])
                else:
                    on_path.add(nxt)
                    dfs(nxt, path + [nxt], on_path)
                    on_path.discard(nxt)

        for start in sorted(adj):
            dfs(start, [start], {start})
        return cycles

    def inversions(self) -> list[Finding]:
        """One ``L001`` finding per lock-order cycle."""
        edges = self.edges()
        findings = []
        for cycle in self.cycles():
            order = " -> ".join(cycle)
            sites = [
                f"{a}->{b} at {edges[(a, b)]}"
                for a, b in zip(cycle, cycle[1:])
                if (a, b) in edges and edges[(a, b)]
            ]
            findings.append(
                Finding(
                    rule="L001",
                    path="<runtime>",
                    line=0,
                    col=0,
                    message=f"lock-order inversion: {order}",
                    hint=(
                        "acquire these locks in one global order (or drop "
                        "the outer lock before taking the inner one)"
                    ),
                    extra={"cycle": cycle, "sites": sites},
                )
            )
        return findings

    def emit(self, metrics=None, tracer=None) -> list[Finding]:
        """Report through :mod:`repro.obs`; returns the findings."""
        from ..obs import as_metrics, as_tracer

        metrics = as_metrics(metrics)
        with as_tracer(tracer).span("check.locks.analyze"):
            found = self.inversions()
        with self._graph_lock:
            acquires = self.acquisitions
            num_edges = len(self._edges)
        metrics.counter("check.locks.acquires").inc(acquires)
        metrics.counter("check.locks.edges").inc(num_edges)
        metrics.counter("check.locks.inversions").inc(len(found))
        return found


class _PatchedFactory:
    def __init__(self, monitor: LockOrderMonitor, kind: str) -> None:
        self._monitor = monitor
        self._kind = kind

    def __call__(self, *args: Any, **kwargs: Any) -> CheckedLock:
        if self._kind == "Lock":
            return self._monitor.lock()
        return self._monitor.rlock()


class patch_threading:
    """``with patch_threading(monitor):`` — checked ``threading`` locks.

    Replaces ``threading.Lock`` and ``threading.RLock`` with monitor
    factories for the duration of the block, so locks created inside it
    (e.g. a fresh ``QueryEngine``) are order-checked.  Locks created
    before the block are untouched.
    """

    def __init__(self, monitor: LockOrderMonitor) -> None:
        self.monitor = monitor
        self._saved: dict[str, Any] = {}

    def __enter__(self) -> LockOrderMonitor:
        self._saved = {"Lock": threading.Lock, "RLock": threading.RLock}
        threading.Lock = _PatchedFactory(self.monitor, "Lock")  # type: ignore[misc,assignment]
        threading.RLock = _PatchedFactory(self.monitor, "RLock")  # type: ignore[misc,assignment]
        return self.monitor

    def __exit__(self, *exc: Any) -> None:
        threading.Lock = self._saved["Lock"]  # type: ignore[misc]
        threading.RLock = self._saved["RLock"]  # type: ignore[misc]


def held_locks(monitor: LockOrderMonitor) -> Iterator[str]:
    """Names of locks the calling thread currently holds (debug aid)."""
    for lock in monitor._stack():
        yield lock.name

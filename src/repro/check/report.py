"""Rendering for checker findings: text and JSON.

Consumed by the ``repro check`` CLI subcommand and CI, which parses the
JSON form (``--format json``) and records the summary line in the job
summary.
"""

from __future__ import annotations

import json

from .findings import Finding
from .lint import LintReport
from .registry import ALL_RULES

__all__ = [
    "render_conformance_table",
    "render_suppressions",
    "render_text",
    "render_json",
    "summary_line",
]


def summary_line(report: LintReport) -> str:
    active = len(report.active)
    suppressed = len(report.suppressed)
    files = len(report.paths)
    verdict = "clean" if report.ok else "FINDINGS"
    out = (
        f"repro check: {verdict} — {files} file(s), "
        f"{active} active finding(s), {suppressed} suppressed"
    )
    if report.errors:
        out += f", {len(report.errors)} error(s)"
    return out


def render_text(report: LintReport, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.format())
    lines.extend(report.errors)
    lines.append(summary_line(report))
    return "\n".join(lines)


def _by_rule(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return counts


def render_json(report: LintReport, extra_findings: list[Finding] | None = None) -> str:
    findings = list(report.findings) + list(extra_findings or [])
    payload = {
        "ok": report.ok,
        "files": len(report.paths),
        "rules": [
            {"code": r.code, "summary": r.summary, "hint": r.hint}
            for r in ALL_RULES
        ],
        "findings": [f.as_dict() for f in findings],
        "errors": list(report.errors),
        "counts": {
            "active": len(report.active),
            "suppressed": len(report.suppressed),
            "stale_suppressions": len(report.stale_suppressions),
            "by_rule": _by_rule(report.active),
        },
        "suppressions": [s.as_dict() for s in report.suppressions],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_suppressions(report: LintReport) -> str:
    """The ``--list-suppressions`` listing: file/line/rules/justification.

    Stale entries (comments that suppressed nothing this run) are
    tagged ``[stale]`` so the audit can drop them.
    """
    lines: list[str] = []
    for s in sorted(report.suppressions, key=lambda s: (s.path, s.line)):
        codes = "all" if s.codes is None else ",".join(s.codes)
        why = s.justification or "(no justification)"
        tag = "" if s.used else "  [stale]"
        lines.append(f"{s.path}:{s.line}: {codes} — {why}{tag}")
    stale = len(report.stale_suppressions)
    lines.append(
        f"{len(report.suppressions)} suppression(s), {stale} stale"
    )
    return "\n".join(lines)


def render_conformance_table(rows: list[dict]) -> str:
    """The protocol-conformance diff as a GitHub-flavored table."""
    if not rows:
        return "no protocol spec found — nothing to conform to"
    out = [
        "| surface | spec | implemented | status |",
        "| --- | --- | --- | --- |",
    ]
    for row in rows:
        mark = "✅ ok" if row["status"] == "ok" else "❌ drift"
        out.append(
            f"| {row['surface']} | {row['spec']} | "
            f"{row['implemented']} | {mark} |"
        )
    return "\n".join(out)

"""Driver for the static invariant lint pass.

Parses Python sources, runs every per-module
:class:`~repro.check.rules.LintRule` over each AST, then every
cross-file :class:`~repro.check.rules.TreeRule` over the whole parsed
tree, and applies ``# repro: noqa`` suppressions:

* ``# repro: noqa`` on a line suppresses every rule on that line;
* ``# repro: noqa-R002`` (or ``noqa-R002,R005``) suppresses only the
  listed rules;
* a suppression on a ``def``/``class`` line covers the whole body —
  the idiom for helpers whose caller holds the lock;
* text after the code (``noqa-R002 — every caller holds the lock``) is
  the suppression's justification, surfaced by
  ``repro check --list-suppressions``.

Suppressed findings are kept (flagged ``suppressed=True``) so CI can
audit the suppression inventory, but they never fail a run.  Every
noqa comment is additionally tracked as a :class:`Suppression` with a
``used`` flag — a comment that suppresses nothing is stale and shows
up as such in the listing.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
import re
from dataclasses import dataclass, field

from .findings import Finding
from .registry import ALL_RULES, split_rules
from .rules import ModuleContext, TreeContext

__all__ = [
    "LintReport",
    "Suppression",
    "lint_source",
    "lint_paths",
    "parse_tree",
    "select_rules",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:-(?P<codes>R\d{3}(?:\s*,\s*R?\d{3})*))?"
    r"(?:\s*(?:—|–|--|-|:)\s*(?P<why>.*))?",
    re.IGNORECASE,
)


@dataclass
class Suppression:
    """One ``# repro: noqa`` comment and whether it fired."""

    path: str
    line: int
    codes: tuple[str, ...] | None  # None means 'all rules'
    justification: str
    used: bool = False

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "codes": None if self.codes is None else list(self.codes),
            "justification": self.justification,
            "used": self.used,
        }


class _Noqa:
    """Mutable per-comment state shared by line and block spans."""

    __slots__ = ("codes", "justification", "used", "line")

    def __init__(
        self,
        line: int,
        codes: frozenset[str] | None,
        justification: str,
    ) -> None:
        self.line = line
        self.codes = codes
        self.justification = justification
        self.used = False

    def matches(self, rule: str) -> bool:
        return self.codes is None or rule in self.codes


@dataclass
class _ModuleInfo:
    ctx: ModuleContext
    noqa: dict[int, _Noqa]
    spans: list[tuple[int, int, _Noqa]]


@dataclass
class LintReport:
    """Findings from one lint run plus the inputs that produced them."""

    findings: list[Finding] = field(default_factory=list)
    paths: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def stale_suppressions(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]

    @property
    def ok(self) -> bool:
        return not self.active and not self.errors

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.paths.extend(other.paths)
        self.errors.extend(other.errors)
        self.suppressions.extend(other.suppressions)


def select_rules(codes: list[str] | None) -> list:
    """Resolve ``--rules`` codes to rule objects (all rules when None)."""
    if not codes:
        return list(ALL_RULES)
    wanted = {c.strip().upper() for c in codes}
    by_code = {r.code: r for r in ALL_RULES}
    unknown = sorted(wanted - set(by_code))
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(by_code))})"
        )
    return [by_code[c] for c in sorted(wanted)]


def _noqa_map(source: str) -> dict[int, _Noqa]:
    """Line -> noqa comment state, from real COMMENT tokens only.

    Tokenizing (rather than regex over raw lines) keeps ``repro:
    noqa`` *mentions* inside docstrings and string literals — this
    file has several — from registering as suppressions.
    """
    out: dict[int, _Noqa] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _NOQA_RE.search(tok.string)
        if not m:
            continue
        line = tok.start[0]
        codes = m.group("codes")
        why = (m.group("why") or "").strip()
        if codes is None:
            out[line] = _Noqa(line, None, why)
        else:
            normalized = frozenset(
                c if c.upper().startswith("R") else f"R{c}"
                for c in (p.strip().upper() for p in codes.split(","))
            )
            out[line] = _Noqa(line, normalized, why)
    return out


def _block_ranges(
    tree: ast.Module, noqa: dict[int, _Noqa]
) -> list[tuple[int, int, _Noqa]]:
    """(start, end, noqa) spans for comments on def/class lines."""
    spans: list[tuple[int, int, _Noqa]] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        # the noqa may sit on the def line itself or on the line carrying
        # the closing paren of a multi-line signature
        first_stmt = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, first_stmt):
            if line in noqa:
                spans.append((node.lineno, end, noqa[line]))
                break
    return spans


def _suppressing_noqa(finding: Finding, info: _ModuleInfo) -> _Noqa | None:
    entry = info.noqa.get(finding.line)
    if entry is not None and entry.matches(finding.rule):
        return entry
    for start, end, span_entry in info.spans:
        if start <= finding.line <= end and span_entry.matches(finding.rule):
            return span_entry
    return None


def _apply_suppression(finding: Finding, info: _ModuleInfo | None) -> None:
    if info is None:
        finding.suppressed = False
        return
    entry = _suppressing_noqa(finding, info)
    if entry is None:
        finding.suppressed = False
        return
    finding.suppressed = True
    entry.used = True
    if entry.justification:
        finding.extra.setdefault("justification", entry.justification)


def _parse_module(
    source: str, path: str, relpath: str | None
) -> _ModuleInfo | str:
    """Parse one module; an error message string on syntax errors."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return f"{path}: syntax error: {exc.msg} (line {exc.lineno})"
    ctx = ModuleContext(tree, path, relpath if relpath is not None else path)
    noqa = _noqa_map(source)
    spans = _block_ranges(tree, noqa) if noqa else []
    return _ModuleInfo(ctx, noqa, spans)


def _suppressions_of(info: _ModuleInfo) -> list[Suppression]:
    return [
        Suppression(
            path=info.ctx.path,
            line=entry.line,
            codes=None if entry.codes is None else tuple(sorted(entry.codes)),
            justification=entry.justification,
            used=entry.used,
        )
        for line, entry in sorted(info.noqa.items())
    ]


def lint_source(
    source: str,
    path: str,
    relpath: str | None = None,
    rules: list | None = None,
) -> LintReport:
    """Lint one module's source text (tree rules see a one-file tree)."""
    report = LintReport(paths=[path])
    parsed = _parse_module(source, path, relpath)
    if isinstance(parsed, str):
        report.errors.append(parsed)
        return report
    module_rules, tree_rules = split_rules(rules)
    for rule in module_rules:
        for finding in rule.check(parsed.ctx):
            _apply_suppression(finding, parsed)
            report.findings.append(finding)
    if tree_rules:
        tree = TreeContext([parsed.ctx])
        for rule in tree_rules:
            for finding in rule.check(tree):
                _apply_suppression(
                    finding,
                    parsed if finding.path == parsed.ctx.path else None,
                )
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressions.extend(_suppressions_of(parsed))
    return report


def _iter_py_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in {"__pycache__", ".git", ".venv"}
                )
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return files


def _load_modules(
    paths: list[str],
) -> tuple[list[_ModuleInfo], list[str], int]:
    infos: list[_ModuleInfo] = []
    errors: list[str] = []
    files = 0
    for filename in _iter_py_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            errors.append(f"{filename}: {exc}")
            continue
        files += 1
        parsed = _parse_module(source, filename, os.path.relpath(filename))
        if isinstance(parsed, str):
            errors.append(parsed)
        else:
            infos.append(parsed)
    return infos, errors, files


def parse_tree(paths: list[str]) -> tuple[TreeContext, list[str]]:
    """Parse every module under ``paths`` into a :class:`TreeContext`.

    The entry point for read-only tree consumers (the CI conformance
    summary); lint rules are not run.
    """
    infos, errors, _ = _load_modules(paths)
    return TreeContext([info.ctx for info in infos]), errors


def lint_paths(
    paths: list[str],
    rules: list | None = None,
    metrics=None,
    tracer=None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Per-module rules run file by file; tree rules run once over the
    whole parsed tree, and their findings inherit the noqa map of the
    file each finding lands on.  Emits ``check.lint.files`` /
    ``check.lint.findings`` counters and a ``check.lint`` span through
    :mod:`repro.obs` when instrumentation is supplied.
    """
    from ..obs import as_metrics, as_tracer

    metrics = as_metrics(metrics)
    tracer = as_tracer(tracer)
    module_rules, tree_rules = split_rules(rules)
    report = LintReport()
    with tracer.span("check.lint", paths=len(paths)):
        infos, errors, files = _load_modules(paths)
        report.errors.extend(errors)
        for info in infos:
            report.paths.append(info.ctx.path)
            for rule in module_rules:
                for finding in rule.check(info.ctx):
                    _apply_suppression(finding, info)
                    report.findings.append(finding)
            metrics.counter("check.lint.files").inc()
        if tree_rules and infos:
            by_path = {info.ctx.path: info for info in infos}
            tree = TreeContext([info.ctx for info in infos])
            for rule in tree_rules:
                for finding in rule.check(tree):
                    _apply_suppression(finding, by_path.get(finding.path))
                    report.findings.append(finding)
        for info in infos:
            report.suppressions.extend(_suppressions_of(info))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    metrics.counter("check.lint.findings").inc(len(report.active))
    metrics.counter("check.lint.suppressed").inc(len(report.suppressed))
    return report

"""Driver for the static invariant lint pass.

Parses Python sources, runs every :class:`~repro.check.rules.LintRule`
over the AST, and applies ``# repro: noqa`` suppressions:

* ``# repro: noqa`` on a line suppresses every rule on that line;
* ``# repro: noqa-R002`` (or ``noqa-R002,R005``) suppresses only the
  listed rules;
* a suppression on a ``def``/``class`` line covers the whole body —
  the idiom for helpers whose caller holds the lock.

Suppressed findings are kept (flagged ``suppressed=True``) so CI can
audit the suppression inventory, but they never fail a run.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from .findings import Finding
from .rules import ALL_RULES, LintRule, ModuleContext

__all__ = ["LintReport", "lint_source", "lint_paths", "select_rules"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<codes>R\d{3}(?:\s*,\s*R?\d{3})*))?",
    re.IGNORECASE,
)


@dataclass
class LintReport:
    """Findings from one lint run plus the inputs that produced them."""

    findings: list[Finding] = field(default_factory=list)
    paths: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active and not self.errors

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.paths.extend(other.paths)
        self.errors.extend(other.errors)


def select_rules(codes: list[str] | None) -> list[LintRule]:
    """Resolve ``--rules`` codes to rule objects (all rules when None)."""
    if not codes:
        return list(ALL_RULES)
    wanted = {c.strip().upper() for c in codes}
    by_code = {r.code: r for r in ALL_RULES}
    unknown = sorted(wanted - set(by_code))
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(by_code))})"
        )
    return [by_code[c] for c in sorted(wanted)]


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed codes (None means 'all rules')."""
    out: dict[int, frozenset[str] | None] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            normalized = frozenset(
                c if c.upper().startswith("R") else f"R{c}"
                for c in (p.strip().upper() for p in codes.split(","))
            )
            out[i] = normalized
    return out


def _block_ranges(
    tree: ast.Module, noqa: dict[int, frozenset[str] | None]
) -> list[tuple[int, int, frozenset[str] | None]]:
    """(start, end, codes) spans for noqa comments on def/class lines."""
    spans: list[tuple[int, int, frozenset[str] | None]] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        # the noqa may sit on the def line itself or on the line carrying
        # the closing paren of a multi-line signature
        first_stmt = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, first_stmt):
            if line in noqa:
                spans.append((node.lineno, end, noqa[line]))
                break
    return spans


def _is_suppressed(
    finding: Finding,
    noqa: dict[int, frozenset[str] | None],
    spans: list[tuple[int, int, frozenset[str] | None]],
) -> bool:
    codes = noqa.get(finding.line, "missing")
    if codes != "missing" and (codes is None or finding.rule in codes):
        return True
    for start, end, span_codes in spans:
        if start <= finding.line <= end and (
            span_codes is None or finding.rule in span_codes
        ):
            return True
    return False


def lint_source(
    source: str,
    path: str,
    relpath: str | None = None,
    rules: list[LintRule] | None = None,
) -> LintReport:
    """Lint one module's source text."""
    report = LintReport(paths=[path])
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return report
    ctx = ModuleContext(tree, path, relpath if relpath is not None else path)
    noqa = _noqa_map(source)
    spans = _block_ranges(tree, noqa) if noqa else []
    for rule in rules if rules is not None else ALL_RULES:
        for finding in rule.check(ctx):
            finding.suppressed = _is_suppressed(finding, noqa, spans)
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _iter_py_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in {"__pycache__", ".git", ".venv"}
                )
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return files


def lint_paths(
    paths: list[str],
    rules: list[LintRule] | None = None,
    metrics=None,
    tracer=None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Emits ``check.lint.files`` / ``check.lint.findings`` counters and a
    ``check.lint`` span through :mod:`repro.obs` when instrumentation is
    supplied.
    """
    from ..obs import as_metrics, as_tracer

    metrics = as_metrics(metrics)
    tracer = as_tracer(tracer)
    report = LintReport()
    with tracer.span("check.lint", paths=len(paths)):
        for filename in _iter_py_files(paths):
            try:
                with open(filename, "r", encoding="utf-8") as fh:
                    source = fh.read()
            except OSError as exc:
                report.errors.append(f"{filename}: {exc}")
                continue
            relpath = os.path.relpath(filename)
            report.extend(
                lint_source(source, filename, relpath=relpath, rules=rules)
            )
            metrics.counter("check.lint.files").inc()
    metrics.counter("check.lint.findings").inc(len(report.active))
    metrics.counter("check.lint.suppressed").inc(len(report.suppressed))
    return report

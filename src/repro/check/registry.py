"""The rule registry: every lint rule the driver knows about.

Split by how a rule runs:

* :data:`MODULE_RULES` — per-module rules; each sees one parsed file
  (:class:`~repro.check.rules.ModuleContext`).  R001–R005 are the
  first-generation invariants, R101–R102 the async-safety family,
  R201 the resource-lifecycle family.
* :data:`TREE_RULES` — cross-file rules; each sees every parsed module
  of the run at once (:class:`~repro.check.rules.TreeContext`).
  R301–R304 are the protocol-conformance family.

:data:`ALL_RULES` is the flat registry ``repro check --rules`` resolves
against.
"""

from __future__ import annotations

from .asyncrules import ASYNC_RULES
from .lifecycle import LIFECYCLE_RULES
from .protocol_conformance import CONFORMANCE_RULES
from .rules import CORE_RULES, LintRule, TreeRule

__all__ = ["ALL_RULES", "MODULE_RULES", "TREE_RULES", "split_rules"]

MODULE_RULES: tuple[LintRule, ...] = (
    CORE_RULES + ASYNC_RULES + LIFECYCLE_RULES
)

TREE_RULES: tuple[TreeRule, ...] = CONFORMANCE_RULES

ALL_RULES: tuple[object, ...] = MODULE_RULES + TREE_RULES


def split_rules(
    rules: list | tuple | None,
) -> tuple[list[LintRule], list[TreeRule]]:
    """Partition a mixed rule selection into (module, tree) rules."""
    if rules is None:
        return list(MODULE_RULES), list(TREE_RULES)
    module_rules = [r for r in rules if not isinstance(r, TreeRule)]
    tree_rules = [r for r in rules if isinstance(r, TreeRule)]
    return module_rules, tree_rules

"""Protocol-conformance rules (R301–R304): prove the wire surface.

Wire protocol v2 declares its whole surface once, as the pure-literal
``SPEC`` in :mod:`repro.service.spec`: op names with the version that
introduced them, the canonical structured error codes, and the version
gates.  These rules extract the *implemented* surface from the AST of
the service layer — without importing it — and diff the two:

* **R301 — surface parity.**  ``SPEC`` must stay a pure literal; every
  spec op needs an engine handler (``_op_<name>``) and every handler a
  spec entry; both front doors must route through the shared
  ``dispatch_line`` (or, failing that, their own literal dispatch
  tables must serve exactly the same ops — an op served by one front
  door but not the other is the bug this rule exists for).
* **R302 — error codes.**  Every error code the service emits
  (``QueryError(..., code=...)``, ``protocol_error("code", ...)``,
  ``_fail(op, "code", ...)``, ``CODES`` ledgers, ``code = "..."``
  mappings) must be in ``SPEC.error_codes``, and every canonical code
  must actually be emitted somewhere — a dead code in the canonical
  set is doc rot on the wire.
* **R303 — version gates.**  The engine's post-v1 gate
  (``_POST_V1_OPS``) must either be derived from
  ``SPEC.post_v1_ops()`` or literally equal the spec's post-v1 ops,
  and the gate must actually be enforced (referenced) by the engine.
* **R304 — docs drift.**  The ``<!-- spec:ops -->`` and
  ``<!-- spec:error-codes -->`` tables in ``docs/API.md`` must match
  ``SPEC`` row for row.

All four run as :class:`~repro.check.rules.TreeRule` passes — they see
every parsed module of the lint run at once.  On trees without a
``service/spec.py`` (other projects, fixtures for unrelated rules) they
are silent.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, TreeContext, TreeRule

__all__ = [
    "CONFORMANCE_RULES",
    "DocsDriftRule",
    "ErrorCodeConformanceRule",
    "FrontDoorParityRule",
    "VersionGateRule",
    "conformance_summary",
]

_SPEC_MODULE = "service/spec.py"
_ENGINE_MODULE = "service/engine.py"
_SHARD_MODULE = "service/shard.py"
_FRONT_DOORS = ("service/server.py", "service/aserver.py")

#: callables whose error-code argument position we know
_CODE_CALLS = {"protocol_error": 0, "_fail": 1, "QueryError": 1}

_DISPATCH_NAME_RE = re.compile(r"dispatch|handlers|routes|ops", re.IGNORECASE)

_OPS_MARKER = "<!-- spec:ops -->"
_ERRORS_MARKER = "<!-- spec:error-codes -->"

_MD_CODE_RE = re.compile(r"`([^`]+)`")


# ---------------------------------------------------------------------------
# AST extraction (no imports — conformance is proven from source)
# ---------------------------------------------------------------------------

def extract_spec(ctx: ModuleContext) -> dict | None:
    """The ``SPEC = ProtocolSpec(...)`` literal, evaluated field by field.

    Returns ``None`` when the module has no SPEC assignment; a field
    that is not a pure literal comes back as the sentinel string
    ``"<non-literal>"`` so R301 can flag it precisely.
    """
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "SPEC"):
            continue
        if not isinstance(node.value, ast.Call):
            return {"__line__": node.lineno}
        out: dict = {"__line__": node.lineno}
        for kw in node.value.keywords:
            if kw.arg is None:
                continue
            try:
                out[kw.arg] = ast.literal_eval(kw.value)
            except ValueError:
                out[kw.arg] = "<non-literal>"
        return out
    return None


def spec_post_v1_ops(spec: dict) -> frozenset[str]:
    ops = spec.get("ops")
    if not isinstance(ops, dict):
        return frozenset()
    return frozenset(op for op, since in ops.items() if since > 1)


def extract_op_handlers(ctx: ModuleContext) -> dict[str, int]:
    """Op name -> line of every ``_op_<name>`` method in the module."""
    out: dict[str, int] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.name.startswith("_op_"):
            out.setdefault(node.name[len("_op_"):], node.lineno)
    return out


def references_name(ctx: ModuleContext, name: str) -> bool:
    """True when the module loads ``name`` (bare or as an attribute)."""
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False


def literal_dispatch_ops(ctx: ModuleContext) -> dict[str, int]:
    """Op names a front door dispatches on *literally* (no shared
    router): string keys of ``*dispatch*``/``*handlers*`` dict literals
    plus strings compared against a variable named ``op``."""
    out: dict[str, int] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if not any(_DISPATCH_NAME_RE.search(n) for n in names):
                continue
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    out.setdefault(key.value, key.lineno)
        elif isinstance(node, ast.Compare):
            left = node.left
            if not (isinstance(left, ast.Name) and left.id == "op"):
                continue
            for comp in node.comparators:
                if isinstance(comp, ast.Constant) and isinstance(
                    comp.value, str
                ):
                    out.setdefault(comp.value, comp.lineno)
    return out


def extract_emitted_codes(ctx: ModuleContext) -> list[tuple[str, int]]:
    """Every structured error code the module can put on the wire."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            pos = _CODE_CALLS.get(name or "")
            if pos is None:
                continue
            for kw in node.keywords:
                if kw.arg == "code" and isinstance(
                    kw.value, ast.Constant
                ) and isinstance(kw.value.value, str):
                    out.append((kw.value.value, kw.value.lineno))
            if len(node.args) > pos:
                arg = node.args[pos]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    out.append((arg.value, arg.lineno))
        elif isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "code" in targets and isinstance(
                node.value, ast.Constant
            ) and isinstance(node.value.value, str):
                out.append((node.value.value, node.lineno))
            elif "CODES" in targets and isinstance(node.value, ast.Dict):
                for v in node.value.values:
                    if isinstance(v, ast.Constant) and isinstance(
                        v.value, str
                    ):
                        out.append((v.value, v.lineno))
    return out


def extract_version_gate(
    ctx: ModuleContext,
) -> tuple[str, frozenset[str] | None, int] | None:
    """The engine's ``_POST_V1_OPS`` gate: ``("derived", None, line)``
    when computed from SPEC, ``("literal", ops, line)`` when spelled
    out, ``None`` when the assignment is missing."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_POST_V1_OPS"
            for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr == "post_v1_ops":
                return ("derived", None, node.lineno)
            # frozenset({...}) literal
            if (
                isinstance(func, ast.Name)
                and func.id in {"frozenset", "set"}
                and value.args
            ):
                try:
                    ops = frozenset(ast.literal_eval(value.args[0]))
                except ValueError:
                    return ("opaque", None, node.lineno)
                return ("literal", ops, node.lineno)
        try:
            ops = frozenset(ast.literal_eval(value))
        except ValueError:
            return ("opaque", None, node.lineno)
        return ("literal", ops, node.lineno)
    return None


# ---------------------------------------------------------------------------
# docs/API.md table parsing
# ---------------------------------------------------------------------------

def find_api_doc(spec_ctx: ModuleContext) -> str | None:
    """``docs/API.md`` found by walking up from the spec module."""
    directory = os.path.dirname(os.path.abspath(spec_ctx.path))
    for _ in range(6):
        candidate = os.path.join(directory, "docs", "API.md")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return None


def parse_doc_tables(
    text: str,
) -> tuple[dict[str, tuple[float, int]], dict[str, int], int, int]:
    """The spec-marked tables of ``docs/API.md``.

    Returns ``(ops, error_codes, ops_marker_line, errors_marker_line)``
    where ``ops`` maps op -> (since, line) and ``error_codes`` maps
    code -> line; marker lines are 0 when the marker is absent.
    """
    ops: dict[str, tuple[float, int]] = {}
    codes: dict[str, int] = {}
    ops_line = errors_line = 0
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == _OPS_MARKER:
            ops_line = i + 1
            i += 1
            while i < len(lines):
                row = lines[i].strip()
                if not row.startswith("|"):
                    if row:
                        break
                    i += 1
                    continue
                cells = [c.strip() for c in row.strip("|").split("|")]
                m = _MD_CODE_RE.search(cells[0]) if cells else None
                if m and len(cells) >= 2:
                    try:
                        since = float(cells[1])
                    except ValueError:
                        since = -1.0
                    ops[m.group(1)] = (since, i + 1)
                i += 1
            continue
        if stripped == _ERRORS_MARKER:
            errors_line = i + 1
            i += 1
            while i < len(lines) and lines[i].strip():
                for m in _MD_CODE_RE.finditer(lines[i]):
                    codes.setdefault(m.group(1), i + 1)
                i += 1
            continue
        i += 1
    return ops, codes, ops_line, errors_line


# ---------------------------------------------------------------------------
# R301 — surface parity
# ---------------------------------------------------------------------------

class FrontDoorParityRule(TreeRule):
    code = "R301"
    summary = (
        "protocol.SPEC is the single literal source of the op surface; "
        "engine handlers and both front doors must serve exactly it"
    )
    hint = (
        "add the op to SPEC.ops (with its since-version) or remove the "
        "orphan handler; front doors must route through the shared "
        "protocol.dispatch_line"
    )

    def check(self, tree: TreeContext) -> Iterator[Finding]:
        spec_ctx = tree.find(_SPEC_MODULE)
        if spec_ctx is None:
            return
        spec = extract_spec(spec_ctx)
        if spec is None:
            yield self.finding_at(
                spec_ctx.path,
                1,
                "service/spec.py defines no `SPEC = ProtocolSpec(...)` "
                "assignment",
            )
            return
        for field in ("ops", "error_codes", "supported"):
            if spec.get(field) == "<non-literal>":
                yield self.finding_at(
                    spec_ctx.path,
                    spec["__line__"],
                    f"SPEC field {field!r} is not a pure literal — the "
                    "conformance pass cannot extract it from the AST",
                    field=field,
                )
        ops = spec.get("ops")
        if not isinstance(ops, dict):
            return
        # -- engine handler parity ---------------------------------------
        engine_ctx = tree.find(_ENGINE_MODULE)
        if engine_ctx is not None:
            handlers = dict(extract_op_handlers(engine_ctx))
            shard_ctx = tree.find(_SHARD_MODULE)
            if shard_ctx is not None:
                for op, line in extract_op_handlers(shard_ctx).items():
                    handlers.setdefault(op, line)
            for op in sorted(set(ops) - set(handlers)):
                yield self.finding_at(
                    spec_ctx.path,
                    spec["__line__"],
                    f"op '{op}' is declared in SPEC.ops but no engine "
                    f"handler `_op_{op}` exists",
                    op=op,
                )
            for op in sorted(set(handlers) - set(ops)):
                where = engine_ctx
                if shard_ctx is not None and op not in extract_op_handlers(
                    engine_ctx
                ):
                    where = shard_ctx
                yield self.finding_at(
                    where.path,
                    handlers[op],
                    f"engine handler `_op_{op}` serves an op missing "
                    "from SPEC.ops",
                    op=op,
                )
        # -- front door parity -------------------------------------------
        doors: dict[str, dict[str, int] | None] = {}
        for suffix in _FRONT_DOORS:
            door_ctx = tree.find(suffix)
            if door_ctx is None:
                continue
            if references_name(door_ctx, "dispatch_line"):
                doors[suffix] = None  # shared router: full surface
            else:
                doors[suffix] = literal_dispatch_ops(door_ctx)
        served: dict[str, frozenset[str]] = {
            suffix: frozenset(ops) if table is None else frozenset(table)
            for suffix, table in doors.items()
        }
        if len(served) == 2:
            (door_a, ops_a), (door_b, ops_b) = sorted(served.items())
            for suffix, mine, theirs, other in (
                (door_a, ops_a, ops_b, door_b),
                (door_b, ops_b, ops_a, door_a),
            ):
                extra = sorted(mine - theirs)
                if extra:
                    door_ctx = tree.find(suffix)
                    table = doors[suffix] or {}
                    line = min(
                        (table.get(op, 1) for op in extra), default=1
                    )
                    yield self.finding_at(
                        door_ctx.path if door_ctx else suffix,
                        line,
                        f"front door {suffix} serves op(s) "
                        f"{', '.join(repr(o) for o in extra)} that "
                        f"{other} does not",
                        ops=extra,
                    )
        for suffix, table in doors.items():
            if table is None:
                continue
            door_ctx = tree.find(suffix)
            missing = sorted(set(ops) - set(table))
            if missing:
                yield self.finding_at(
                    door_ctx.path if door_ctx else suffix,
                    1,
                    f"front door {suffix} does not route through the "
                    "shared dispatch_line and its literal dispatch "
                    f"table misses spec op(s) "
                    f"{', '.join(repr(o) for o in missing[:5])}"
                    + ("..." if len(missing) > 5 else ""),
                    ops=missing,
                )


# ---------------------------------------------------------------------------
# R302 — canonical error codes
# ---------------------------------------------------------------------------

class ErrorCodeConformanceRule(TreeRule):
    code = "R302"
    summary = (
        "every structured error code the service emits is in "
        "SPEC.error_codes, and every canonical code is emitted"
    )
    hint = (
        "add the new code to SPEC.error_codes (and the docs/API.md "
        "error table), or reuse one of the canonical codes"
    )

    def check(self, tree: TreeContext) -> Iterator[Finding]:
        spec_ctx = tree.find(_SPEC_MODULE)
        if spec_ctx is None:
            return
        spec = extract_spec(spec_ctx)
        if spec is None:
            return
        canonical = spec.get("error_codes")
        if not isinstance(canonical, (tuple, list)):
            return
        canonical_set = frozenset(canonical)
        emitted: set[str] = set()
        for ctx in tree.modules:
            rel = ctx.relpath
            if "service/" not in rel and not rel.startswith("service"):
                continue
            if ctx is spec_ctx:
                continue
            for code, line in extract_emitted_codes(ctx):
                emitted.add(code)
                if code not in canonical_set:
                    yield self.finding_at(
                        ctx.path,
                        line,
                        f"error code {code!r} is not in the canonical "
                        "SPEC.error_codes set",
                        error_code=code,
                    )
        for code in sorted(canonical_set - emitted):
            yield self.finding_at(
                spec_ctx.path,
                spec["__line__"],
                f"canonical error code {code!r} is declared in SPEC "
                "but never emitted by the service layer",
                error_code=code,
            )


# ---------------------------------------------------------------------------
# R303 — version gates
# ---------------------------------------------------------------------------

class VersionGateRule(TreeRule):
    code = "R303"
    summary = (
        "post-v1 ops must be version-gated: the engine's _POST_V1_OPS "
        "matches SPEC (or derives from it) and is actually enforced"
    )
    hint = (
        "derive the gate with `_POST_V1_OPS = SPEC.post_v1_ops()` and "
        "keep the `op in _POST_V1_OPS` check on the execute path"
    )

    def check(self, tree: TreeContext) -> Iterator[Finding]:
        spec_ctx = tree.find(_SPEC_MODULE)
        engine_ctx = tree.find(_ENGINE_MODULE)
        if spec_ctx is None or engine_ctx is None:
            return
        spec = extract_spec(spec_ctx)
        if spec is None or not isinstance(spec.get("ops"), dict):
            return
        gated = spec_post_v1_ops(spec)
        gate = extract_version_gate(engine_ctx)
        if gate is None:
            if gated:
                yield self.finding_at(
                    engine_ctx.path,
                    1,
                    "SPEC declares post-v1 ops "
                    f"({', '.join(sorted(gated))}) but the engine "
                    "defines no _POST_V1_OPS version gate",
                    ops=sorted(gated),
                )
            return
        kind, literal_ops, line = gate
        if kind == "opaque":
            yield self.finding_at(
                engine_ctx.path,
                line,
                "_POST_V1_OPS is neither derived from SPEC"
                ".post_v1_ops() nor a literal op set — the gate "
                "cannot be verified",
            )
        elif kind == "literal" and literal_ops is not None:
            for op in sorted(gated - literal_ops):
                yield self.finding_at(
                    engine_ctx.path,
                    line,
                    f"post-v1 op {op!r} (SPEC since > 1) is missing "
                    "from the _POST_V1_OPS version gate",
                    op=op,
                )
            for op in sorted(literal_ops - gated):
                yield self.finding_at(
                    engine_ctx.path,
                    line,
                    f"_POST_V1_OPS gates {op!r} which SPEC declares "
                    "as a v1 op (or not at all)",
                    op=op,
                )
        # the gate must be enforced somewhere past its definition
        uses = sum(
            1
            for node in ast.walk(engine_ctx.tree)
            if isinstance(node, ast.Name)
            and node.id == "_POST_V1_OPS"
            and isinstance(node.ctx, ast.Load)
        )
        if gated and uses == 0:
            yield self.finding_at(
                engine_ctx.path,
                line,
                "_POST_V1_OPS is defined but never enforced — v1 "
                "clients would see the post-v1 surface",
            )


# ---------------------------------------------------------------------------
# R304 — docs/API.md drift
# ---------------------------------------------------------------------------

class DocsDriftRule(TreeRule):
    code = "R304"
    summary = (
        "the spec-marked op and error-code tables in docs/API.md match "
        "protocol.SPEC row for row"
    )
    hint = (
        "regenerate the table under `<!-- spec:ops -->` / "
        "`<!-- spec:error-codes -->` in docs/API.md from "
        "repro.service.spec.SPEC"
    )

    def check(self, tree: TreeContext) -> Iterator[Finding]:
        spec_ctx = tree.find(_SPEC_MODULE)
        if spec_ctx is None:
            return
        spec = extract_spec(spec_ctx)
        if spec is None:
            return
        doc_path = find_api_doc(spec_ctx)
        if doc_path is None:
            return
        try:
            with open(doc_path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return
        doc_ops, doc_codes, ops_line, errors_line = parse_doc_tables(text)
        ops = spec.get("ops")
        if isinstance(ops, dict):
            if ops_line == 0:
                yield self.finding_at(
                    doc_path,
                    1,
                    "docs/API.md has no `<!-- spec:ops -->` marker — "
                    "the op table cannot be checked against SPEC",
                )
            else:
                for op in sorted(set(ops) - set(doc_ops)):
                    yield self.finding_at(
                        doc_path,
                        ops_line,
                        f"SPEC op '{op}' is missing from the "
                        "spec-marked op table",
                        op=op,
                    )
                for op, (since, line) in sorted(doc_ops.items()):
                    if op not in ops:
                        yield self.finding_at(
                            doc_path,
                            line,
                            f"documented op '{op}' is not in SPEC.ops",
                            op=op,
                        )
                    elif float(ops[op]) != since:
                        yield self.finding_at(
                            doc_path,
                            line,
                            f"documented since-version {since:g} for "
                            f"op '{op}' drifts from SPEC "
                            f"({float(ops[op]):g})",
                            op=op,
                        )
        codes = spec.get("error_codes")
        if isinstance(codes, (tuple, list)):
            if errors_line == 0:
                yield self.finding_at(
                    doc_path,
                    1,
                    "docs/API.md has no `<!-- spec:error-codes -->` "
                    "marker — the error table cannot be checked "
                    "against SPEC",
                )
            else:
                for code in sorted(set(codes) - set(doc_codes)):
                    yield self.finding_at(
                        doc_path,
                        errors_line,
                        f"SPEC error code '{code}' is missing from "
                        "the spec-marked error-code table",
                        error_code=code,
                    )
                for code, line in sorted(doc_codes.items()):
                    if code not in codes:
                        yield self.finding_at(
                            doc_path,
                            line,
                            f"documented error code '{code}' is not "
                            "in SPEC.error_codes",
                            error_code=code,
                        )


# ---------------------------------------------------------------------------
# CI summary table
# ---------------------------------------------------------------------------

def conformance_summary(tree: TreeContext) -> list[dict]:
    """Surface-by-surface comparison rows for the CI job summary.

    Each row: ``{"surface", "spec", "implemented", "status"}`` —
    ``status`` is ``"ok"`` or ``"drift"``.  An empty list means the
    tree has no ``service/spec.py`` to conform to.
    """
    spec_ctx = tree.find(_SPEC_MODULE)
    if spec_ctx is None:
        return []
    spec = extract_spec(spec_ctx) or {}
    ops = spec.get("ops") if isinstance(spec.get("ops"), dict) else {}
    codes = spec.get("error_codes")
    codes = list(codes) if isinstance(codes, (tuple, list)) else []
    rows: list[dict] = []

    engine_ctx = tree.find(_ENGINE_MODULE)
    handlers: dict[str, int] = {}
    if engine_ctx is not None:
        handlers = dict(extract_op_handlers(engine_ctx))
        shard_ctx = tree.find(_SHARD_MODULE)
        if shard_ctx is not None:
            for op, line in extract_op_handlers(shard_ctx).items():
                handlers.setdefault(op, line)
    rows.append(
        {
            "surface": "engine op handlers",
            "spec": f"{len(ops)} ops",
            "implemented": f"{len(handlers)} handlers",
            "status": "ok" if set(ops) == set(handlers) else "drift",
        }
    )
    for suffix in _FRONT_DOORS:
        door_ctx = tree.find(suffix)
        if door_ctx is None:
            continue
        shared = references_name(door_ctx, "dispatch_line")
        rows.append(
            {
                "surface": f"front door {suffix}",
                "spec": f"{len(ops)} ops",
                "implemented": (
                    "shared dispatch_line"
                    if shared
                    else f"{len(literal_dispatch_ops(door_ctx))} literal ops"
                ),
                "status": "ok"
                if shared
                or set(literal_dispatch_ops(door_ctx)) == set(ops)
                else "drift",
            }
        )
    emitted: set[str] = set()
    for ctx in tree.modules:
        if "service" in ctx.relpath and ctx is not spec_ctx:
            emitted.update(c for c, _ in extract_emitted_codes(ctx))
    rows.append(
        {
            "surface": "error codes",
            "spec": f"{len(codes)} canonical",
            "implemented": f"{len(emitted)} emitted",
            "status": "ok" if emitted == set(codes) else "drift",
        }
    )
    gate = extract_version_gate(engine_ctx) if engine_ctx else None
    gated = spec_post_v1_ops(spec)
    if gate is None:
        gate_desc, gate_ok = "missing", not gated
    elif gate[0] == "derived":
        gate_desc, gate_ok = "derived from SPEC.post_v1_ops()", True
    elif gate[0] == "literal":
        gate_desc = f"literal ({len(gate[1] or ())} ops)"
        gate_ok = gate[1] == gated
    else:
        gate_desc, gate_ok = "opaque", False
    rows.append(
        {
            "surface": "version gate (_POST_V1_OPS)",
            "spec": f"{len(gated)} post-v1 ops",
            "implemented": gate_desc,
            "status": "ok" if gate_ok else "drift",
        }
    )
    doc_path = find_api_doc(spec_ctx)
    if doc_path is not None:
        try:
            with open(doc_path, "r", encoding="utf-8") as fh:
                doc_ops, doc_codes, ops_line, errors_line = (
                    parse_doc_tables(fh.read())
                )
        except OSError:
            doc_ops, doc_codes, ops_line, errors_line = {}, {}, 0, 0
        ops_ok = ops_line > 0 and set(doc_ops) == set(ops) and all(
            float(ops[op]) == since for op, (since, _) in doc_ops.items()
        )
        rows.append(
            {
                "surface": "docs/API.md op table",
                "spec": f"{len(ops)} ops",
                "implemented": f"{len(doc_ops)} rows",
                "status": "ok" if ops_ok else "drift",
            }
        )
        rows.append(
            {
                "surface": "docs/API.md error table",
                "spec": f"{len(codes)} codes",
                "implemented": f"{len(doc_codes)} rows",
                "status": "ok"
                if errors_line > 0 and set(doc_codes) == set(codes)
                else "drift",
            }
        )
    return rows


CONFORMANCE_RULES: tuple[TreeRule, ...] = (
    FrontDoorParityRule(),
    ErrorCodeConformanceRule(),
    VersionGateRule(),
    DocsDriftRule(),
)

"""Dynamic race detection for parallel kernels.

The simulated :class:`~repro.parallel.runtime.ParallelRuntime` executes
task bodies serially, so a shared-memory race never corrupts data here —
but the same kernel on a real parallel runtime would.  The detector
makes those latent races visible:

* :class:`CheckedArray` wraps an ``ndarray`` and records every indexed
  read/write against the *task* performing it (tasks are registered by
  the runtime hook around each chunk).
* All tasks within one ``parallel_for`` phase are treated as potentially
  concurrent.  At phase end the detector flags any index written by two
  different tasks (``D001`` write/write) or written by one task and read
  by another (``D002`` read/write).
* Writes routed through the :meth:`CheckedArray.atomic_add` /
  :meth:`CheckedArray.atomic_max` / :meth:`CheckedArray.atomic_cas`
  helpers mirror :mod:`repro.parallel.atomics` semantics and are exempt
  — atomics are the sanctioned way to share.

Recording is sampling-based (``sample_every=N`` records every Nth
access) and **off by default**: it activates only when the runtime is
constructed under ``REPRO_CHECK=1`` or via ``runtime.checked()``, and a
plain runtime's per-chunk overhead is a single ``is None`` test.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

from .findings import Finding

__all__ = ["CheckedArray", "RaceDetector"]

#: cap findings per phase so a fully-racy kernel stays readable
_MAX_FINDINGS_PER_PHASE = 20


def _normalize(index: Any, length: int) -> Iterable[int] | None:
    """Flatten an index expression to scalar positions (None = whole array)."""
    if isinstance(index, (int, np.integer)):
        return (int(index) % length if length else int(index),)
    if isinstance(index, slice):
        return range(*index.indices(length))
    if isinstance(index, (list, tuple)):
        try:
            return [int(i) for i in index]
        except (TypeError, ValueError):
            return None
    if isinstance(index, np.ndarray):
        if index.dtype == bool:
            return [int(i) for i in np.flatnonzero(index)]
        if index.ndim <= 1:
            return [int(i) for i in np.atleast_1d(index)]
    return None


class _TaskAccess:
    """Read/write index sets one task performed on one array."""

    __slots__ = ("reads", "writes", "whole_write", "whole_read")

    def __init__(self) -> None:
        self.reads: set[int] = set()
        self.writes: set[int] = set()
        self.whole_write = False
        self.whole_read = False


class CheckedArray:
    """ndarray proxy that reports indexed accesses to a detector.

    Transparent when the detector is inactive (accesses forward straight
    to the underlying array).  Use ``.array`` to unwrap.
    """

    def __init__(
        self, array: np.ndarray, detector: "RaceDetector", name: str = "array"
    ) -> None:
        self.array = array
        self._detector = detector
        self.name = name

    def __getitem__(self, index: Any) -> Any:
        self._detector._record(self, index, write=False)
        return self.array[index]

    def __setitem__(self, index: Any, value: Any) -> None:
        self._detector._record(self, index, write=True)
        self.array[index] = value

    def __len__(self) -> int:
        return len(self.array)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    # -- sanctioned shared mutation (mirrors repro.parallel.atomics) --

    def atomic_add(self, index: int, value: Any) -> Any:
        """Fetch-and-add; exempt from race flagging."""
        self._detector._record(self, index, write=True, atomic=True)
        old = self.array[index]
        self.array[index] = old + value
        return old

    def atomic_max(self, index: int, value: Any) -> Any:
        self._detector._record(self, index, write=True, atomic=True)
        old = self.array[index]
        if value > old:
            self.array[index] = value
        return old

    def atomic_cas(self, index: int, expected: Any, value: Any) -> bool:
        self._detector._record(self, index, write=True, atomic=True)
        if self.array[index] == expected:
            self.array[index] = value
            return True
        return False

    def __repr__(self) -> str:
        return f"CheckedArray({self.name!r}, shape={self.array.shape})"


class RaceDetector:
    """Records per-task access sets and flags cross-task overlaps.

    Lifecycle (driven by the :class:`ParallelRuntime` hook)::

        detector.begin_phase(name)
        for each chunk: detector.begin_task(i); body(chunk); detector.end_task()
        detector.end_phase(name)   # analyzes, accumulates findings
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.sample_every = max(1, int(sample_every))
        self.findings: list[Finding] = []
        self.phases = 0
        self.accesses = 0
        self.queue_pushes = 0
        self._tick = 0
        self._current = threading.local()
        #: (array id) -> {task id -> _TaskAccess} for the open phase
        self._phase_access: dict[int, dict[int, _TaskAccess]] = {}
        self._arrays: dict[int, CheckedArray] = {}
        self._phase_name = ""

    # -- wrapping ----------------------------------------------------

    def wrap(self, array: np.ndarray, name: str = "array") -> CheckedArray:
        return CheckedArray(array, self, name)

    # -- runtime hook ------------------------------------------------

    def install_queue_hook(self) -> None:
        """Count ThreadLocalQueues pushes (set by ``runtime.checked()``).

        The hook is a module global in :mod:`repro.parallel.workqueue`;
        attaching a new detector replaces the previous one's hook.
        """
        from ..parallel import workqueue

        workqueue._set_push_hook(self.on_queue_push)

    def begin_phase(self, name: str) -> None:
        self._phase_name = name
        self._phase_access = {}
        self._arrays = {}

    def begin_task(self, task_id: int) -> None:
        self._current.task = task_id

    def end_task(self) -> None:
        self._current.task = None

    def on_queue_push(self, thread: int, items: Any) -> None:
        """Workqueue hook — counts thread-local pushes for the report."""
        self.queue_pushes += 1

    def end_phase(self, name: str) -> list[Finding]:
        self.phases += 1
        new = self._analyze()
        self.findings.extend(new)
        self._phase_access = {}
        self._arrays = {}
        return new

    # -- recording ---------------------------------------------------

    def _record(
        self, array: CheckedArray, index: Any, write: bool, atomic: bool = False
    ) -> None:
        task = getattr(self._current, "task", None)
        if task is None:
            return  # outside any parallel task: setup/teardown access
        if atomic:
            return  # sanctioned shared mutation
        self._tick += 1
        if self._tick % self.sample_every:
            return
        self.accesses += 1
        key = id(array)
        self._arrays[key] = array
        access = self._phase_access.setdefault(key, {}).setdefault(
            task, _TaskAccess()
        )
        positions = _normalize(index, len(array.array))
        if positions is None:
            if write:
                access.whole_write = True
            else:
                access.whole_read = True
        elif write:
            access.writes.update(positions)
        else:
            access.reads.update(positions)

    # -- analysis ----------------------------------------------------

    def _analyze(self) -> list[Finding]:
        found: list[Finding] = []
        for key, per_task in self._phase_access.items():
            if len(per_task) < 2:
                continue
            array = self._arrays[key]
            writers: dict[int, set[int]] = {}
            readers: dict[int, set[int]] = {}
            whole_writers = [t for t, a in per_task.items() if a.whole_write]
            for task, access in per_task.items():
                for i in access.writes:
                    writers.setdefault(i, set()).add(task)
                for i in access.reads:
                    readers.setdefault(i, set()).add(task)
            if len(whole_writers) >= 2 or (
                whole_writers and len(per_task) >= 2
            ):
                found.append(self._finding(
                    "D001", array, None, sorted(per_task),
                    "unindexable writes from multiple tasks",
                ))
            for i, tasks in sorted(writers.items()):
                if len(tasks) >= 2:
                    found.append(self._finding(
                        "D001", array, i, sorted(tasks),
                        "write/write overlap",
                    ))
                other_readers = readers.get(i, set()) - tasks
                if other_readers:
                    found.append(self._finding(
                        "D002", array, i,
                        sorted(tasks | other_readers),
                        "read/write overlap",
                    ))
                if len(found) >= _MAX_FINDINGS_PER_PHASE:
                    break
            if len(found) >= _MAX_FINDINGS_PER_PHASE:
                break
        return found

    def _finding(
        self,
        rule: str,
        array: CheckedArray,
        index: int | None,
        tasks: list[int],
        kind: str,
    ) -> Finding:
        where = f"[{index}]" if index is not None else ""
        return Finding(
            rule=rule,
            path="<runtime>",
            line=0,
            col=0,
            message=(
                f"{kind} on '{array.name}'{where} in phase "
                f"'{self._phase_name}' (tasks {tasks})"
            ),
            hint=(
                "partition the index space per task, or route the update "
                "through repro.parallel.atomics / CheckedArray.atomic_*"
            ),
            extra={
                "array": array.name,
                "index": index,
                "tasks": tasks,
                "phase": self._phase_name,
            },
        )

    def emit(self, metrics=None, tracer=None) -> list[Finding]:
        """Report accumulated findings through :mod:`repro.obs`."""
        from ..obs import as_metrics, as_tracer

        metrics = as_metrics(metrics)
        with as_tracer(tracer).span("check.races.analyze"):
            found = list(self.findings)
        metrics.counter("check.races.phases").inc(self.phases)
        metrics.counter("check.races.accesses").inc(self.accesses)
        metrics.counter("check.races.queue_pushes").inc(self.queue_pushes)
        metrics.counter("check.races.findings").inc(len(found))
        return found

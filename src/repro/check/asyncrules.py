"""Async-safety rules (R101–R102) for the asyncio front door.

The asyncio server (:mod:`repro.service.aserver`) multiplexes every
connection onto one event loop; a single blocking call anywhere in the
coroutine graph stalls *all* of them at once.  Two rules encode that:

* **R101** — no blocking calls inside code that runs on the event loop:
  ``time.sleep``, synchronous ``socket`` construction, ``os.fsync`` /
  ``os.fdatasync``, anything in ``subprocess``, builtin ``open``,
  ``lock.acquire()`` without a timeout, and the threaded
  ``SocketSession`` client surface.  "Runs on the event loop" is
  computed with a call-graph walk over the module AST: the bodies of
  every ``async def``, plus every *sync* helper reachable from one by a
  direct call (a function merely *passed* to ``run_in_executor`` /
  ``asyncio.to_thread`` creates no call edge, so the executor
  offloading pattern stays clean).
* **R102** — no ``await`` while holding a ``threading`` lock.  An
  awaiting coroutine parks with the lock held; any other task (or
  executor thread) touching the lock then deadlocks the loop.  Only
  synchronous ``with <lock>:`` blocks count — ``async with`` is the
  asyncio-lock idiom and is exempt.

Findings suppress with ``# repro: noqa-R101`` / ``-R102`` (see
:mod:`repro.check.lint`); block suppressions on the ``def`` line cover
the body, which is the idiom for deliberately-blocking shutdown paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import (
    LintRule,
    ModuleContext,
    _is_lock_attr,
    _walk_shallow,
)

__all__ = ["ASYNC_RULES", "AsyncBlockingCallRule", "AwaitUnderLockRule"]

#: dotted call targets that block the calling thread
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
    }
)

#: any call into these modules blocks (process spawn + pipe I/O)
_BLOCKING_MODULES = frozenset({"subprocess"})

#: blocking builtins (file I/O on the loop)
_BLOCKING_BUILTINS = frozenset({"open"})

#: constructors of the *threaded* client surface — connecting or
#: round-tripping one of these parks the event loop on socket I/O
_SESSION_TYPES = frozenset({"SocketSession", "ServiceClient"})

#: blocking methods of the threaded client surface
_SESSION_METHODS = frozenset({"request", "batch"})

#: executor offload entry points: a function *passed* (not called)
#: here runs off-loop, so no call edge is created for it
_OFFLOAD = frozenset({"run_in_executor", "to_thread"})


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import binding."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _dotted(func: ast.AST, aliases: dict[str, str]) -> str | None:
    """The dotted origin a call target resolves to (``time.sleep``)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id, node.id)
    parts.reverse()
    return ".".join([origin, *parts]) if parts else origin


def _is_lock_receiver(expr: ast.AST) -> bool:
    """True for ``self.<x lock y>`` or a bare name containing 'lock'."""
    if _is_lock_attr(expr) is not None:
        return True
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return True
    return False


def _is_pool_receiver(expr: ast.AST) -> bool:
    """True when the receiver looks like a thread/process pool."""
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is None:
        return False
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


class _FunctionTable:
    """Every def in the module, keyed ``name`` / ``Class.name``."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.owner: dict[str, str | None] = {}
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for stmt in cls.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls.name}.{stmt.name}"
                    self.functions[qual] = stmt
                    self.owner[qual] = cls.name
        method_nodes = set(map(id, self.functions.values()))
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and id(node) not in method_nodes:
                self.functions.setdefault(node.name, node)
                self.owner.setdefault(node.name, None)

    def edges(self, qual: str) -> set[str]:
        """Direct local call targets of one function (same module)."""
        fn = self.functions[qual]
        cls = self.owner[qual]
        out: set[str] = set()
        for stmt in fn.body:
            for node in _walk_shallow(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id in self.functions:
                        out.add(func.id)
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and cls is not None
                ):
                    callee = f"{cls}.{func.attr}"
                    if callee in self.functions:
                        out.add(callee)
        return out


class AsyncBlockingCallRule(LintRule):
    code = "R101"
    summary = (
        "no blocking calls (time.sleep, sync socket/file I/O, fsync, "
        "subprocess, threaded Session methods, lock.acquire() without "
        "timeout) in code reachable from an async def"
    )
    hint = (
        "offload with `await loop.run_in_executor(...)` (or "
        "asyncio.to_thread) — or, for a deliberately-blocking teardown "
        "path, move it off the loop and out of the coroutine"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = _FunctionTable(ctx.tree)
        seeds = [
            qual
            for qual, fn in table.functions.items()
            if isinstance(fn, ast.AsyncFunctionDef)
        ]
        if not seeds:
            return
        aliases = _import_aliases(ctx.tree)
        # call-graph walk: every sync helper a coroutine calls directly
        # also runs on the loop; record which async entry reaches it
        on_loop: dict[str, str] = {qual: qual for qual in seeds}
        stack = list(seeds)
        while stack:
            qual = stack.pop()
            for callee in sorted(table.edges(qual)):
                if callee in on_loop:
                    continue
                fn = table.functions[callee]
                if isinstance(fn, ast.AsyncFunctionDef):
                    continue  # a seed already (or an un-awaited bug)
                on_loop[callee] = on_loop[qual]
                stack.append(callee)
        for qual in sorted(on_loop):
            yield from self._scan(ctx, table, qual, on_loop[qual], aliases)

    def _scan(
        self,
        ctx: ModuleContext,
        table: _FunctionTable,
        qual: str,
        entry: str,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        fn = table.functions[qual]
        where = (
            f"in async '{qual}'"
            if qual == entry
            else f"in '{qual}', reachable from async '{entry}'"
        )
        session_locals: set[str] = set()
        for stmt in fn.body:
            for node in _walk_shallow(stmt):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    dotted = _dotted(node.value.func, aliases)
                    if dotted is not None and dotted.split(".")[-1] in (
                        _SESSION_TYPES
                    ):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                session_locals.add(target.id)
                if not isinstance(node, ast.Call):
                    continue
                reason = self._blocking_reason(
                    node, aliases, session_locals
                )
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{reason} {where}",
                        function=qual,
                        entry=entry,
                    )

    @staticmethod
    def _blocking_reason(
        node: ast.Call,
        aliases: dict[str, str],
        session_locals: set[str],
    ) -> str | None:
        func = node.func
        dotted = _dotted(func, aliases)
        if dotted is not None:
            if dotted in _BLOCKING_EXACT:
                return f"blocking call '{dotted}(...)'"
            top = dotted.split(".")[0]
            if top in _BLOCKING_MODULES:
                return f"blocking call '{dotted}(...)'"
            if dotted in _BLOCKING_BUILTINS:
                return "blocking builtin 'open(...)'"
            if dotted.split(".")[-1] in _SESSION_TYPES:
                return (
                    f"threaded client '{dotted.split('.')[-1]}' "
                    "connects synchronously"
                )
        if isinstance(func, ast.Attribute):
            if func.attr == "shutdown" and _is_pool_receiver(func.value):
                wait = True
                for kw in node.keywords:
                    if kw.arg == "wait":
                        wait = not (
                            isinstance(kw.value, ast.Constant)
                            and not kw.value.value
                        )
                if wait:
                    return (
                        "executor '.shutdown(wait=True)' joins worker "
                        "threads on the event loop"
                    )
            if func.attr == "acquire" and _is_lock_receiver(func.value):
                has_timeout = any(
                    kw.arg == "timeout" for kw in node.keywords
                ) or bool(node.args)
                if not has_timeout:
                    return "unbounded 'lock.acquire()' (no timeout)"
            if (
                func.attr in _SESSION_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in session_locals
            ):
                return (
                    f"threaded Session method '.{func.attr}(...)' "
                    "round-trips a socket"
                )
        return None


class AwaitUnderLockRule(LintRule):
    code = "R102"
    summary = "no `await` while holding a threading lock"
    hint = (
        "release the lock before awaiting (copy what you need out of "
        "the critical section), or switch to an asyncio.Lock and "
        "`async with`"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings: list[Finding] = []
                for stmt in node.body:
                    self._scan(ctx, stmt, frozenset(), node.name, findings)
                yield from findings

    def _scan(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        held: frozenset[str],
        coro: str,
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested definitions run in their own context
        if isinstance(node, ast.Await) and held:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"'{coro}' awaits while holding threading lock(s) "
                    f"{'/'.join(sorted(held))}",
                    locks=sorted(held),
                )
            )
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                self._scan(ctx, item.context_expr, inner, coro, findings)
                expr = item.context_expr
                if _is_lock_attr(expr) is not None:
                    inner = inner | {_is_lock_attr(expr) or ""}
                elif isinstance(expr, ast.Name) and "lock" in expr.id.lower():
                    inner = inner | {expr.id}
            for stmt in node.body:
                self._scan(ctx, stmt, inner, coro, findings)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(ctx, child, held, coro, findings)


ASYNC_RULES: tuple[LintRule, ...] = (
    AsyncBlockingCallRule(),
    AwaitUnderLockRule(),
)

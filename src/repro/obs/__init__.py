"""``repro.obs`` — unified tracing & metrics for the whole framework.

One instrumentation surface across construction, traversal, and serving
(the measurement discipline behind the paper's §VI evaluation):

* :mod:`~repro.obs.tracer` — nested, thread-safe wall-clock **spans**
  with attributes, exportable as Chrome trace events;
* :mod:`~repro.obs.metrics` — a registry of named **counters, gauges,
  and histograms** (Prometheus data model), thread-safe throughout;
* :mod:`~repro.obs.prometheus` — text exposition + subset parser;
* :mod:`~repro.obs.profile` — named workloads producing one merged
  Perfetto timeline (Python spans + simulated schedules) and a metrics
  summary; CLI: ``python -m repro profile``.

Every instrumented API takes the same trailing trio —
``runtime=None, tracer=None, metrics=None`` — and the ``None`` defaults
resolve to true no-op singletons, so uninstrumented runs pay near-zero
overhead.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    as_metrics,
)
from .profile import PROFILE_WORKLOADS, merged_chrome_trace, run_profile
from .prometheus import parse_prometheus_text, prometheus_text
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, as_tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "PROFILE_WORKLOADS",
    "Span",
    "Tracer",
    "as_metrics",
    "as_tracer",
    "merged_chrome_trace",
    "parse_prometheus_text",
    "prometheus_text",
    "run_profile",
]

"""Named counters, gauges, and histograms behind one registry.

A :class:`MetricsRegistry` is the process-wide (or session-wide) home of
every instrument the framework emits: construction pair counters, cache
outcome counters, per-op service latency histograms.  Instruments are
identified by ``(name, labels)`` — the Prometheus data model — and
created on first use::

    reg = MetricsRegistry()
    reg.counter("slinegraph_emitted_pairs_total", algorithm="hashmap").inc(42)
    reg.histogram("service_request_seconds", op="s_distance").observe(0.003)

Everything is thread-safe: instrument creation takes the registry lock,
and each instrument carries its own lock for updates, so concurrent
request threads can never drop or corrupt samples.

Like the tracer, the registry has a true no-op twin
(:data:`NULL_METRICS` via :func:`as_metrics`): instruments handed out by
the null registry are shared singletons whose update methods do nothing,
so uninstrumented hot paths pay only an attribute call.
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "as_metrics",
]

#: Prometheus' default latency buckets (seconds) — upper bounds, +Inf implied
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

#: Log-spaced latency bounds (seconds): four buckets per decade from
#: 100 µs to 10 s.  The Prometheus defaults put every sub-5ms
#: observation in one bucket, which makes interpolated p99/p999
#: estimates of a fast service meaningless; these bounds keep the
#: relative quantile error bounded (~78% bucket width) across five
#: decades.  Used by the service latency histograms and the load
#: harness (:mod:`repro.bench.load`).
LATENCY_BUCKETS = (
    0.0001, 0.000178, 0.000316, 0.000562,
    0.001, 0.00178, 0.00316, 0.00562,
    0.01, 0.0178, 0.0316, 0.0562,
    0.1, 0.178, 0.316, 0.562,
    1.0, 1.78, 3.16, 5.62, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (resident bytes, queue depth)."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bounds`` are upper bucket bounds in ascending order; every
    observation also lands in the implicit ``+Inf`` bucket and feeds the
    running ``sum``/``count``.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count",
                 "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            i = bisect.bisect_left(self.bounds, value)
            if i < len(self._counts):  # else: only the implicit +Inf bucket
                self._counts[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the cumulative buckets.

        Prometheus ``histogram_quantile`` semantics: find the bucket the
        ``q``-th observation falls in and interpolate linearly between
        its bounds (the first bucket interpolates from 0).  Observations
        beyond the last finite bound cannot be interpolated, so the last
        finite bound is returned — choose bounds that cover the signal
        (:data:`LATENCY_BUCKETS` for service latencies).  Returns 0.0
        for an empty histogram.
        """
        q = min(max(float(q), 0.0), 1.0)
        with self._lock:
            count = self._count
            counts = list(self._counts)
        if count == 0:
            return 0.0
        target = q * count
        cumulative = 0
        for i, n in enumerate(counts):
            if cumulative + n >= target and n > 0:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                frac = (target - cumulative) / n
                return lower + (upper - lower) * frac
            cumulative += n
        return self.bounds[-1]  # the +Inf bucket: clamp to the last bound

    def sample(self) -> dict:
        """Cumulative bucket counts keyed by bound, plus sum/count/mean."""
        with self._lock:
            cumulative = 0
            buckets = {}
            for bound, n in zip(self.bounds, self._counts):
                cumulative += n
                buckets[bound] = cumulative
            return {
                "buckets": buckets,
                "sum": self._sum,
                "count": self._count,
                "mean": self._sum / self._count if self._count else 0.0,
            }


class MetricsRegistry:
    """Get-or-create home of every named instrument (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelSet], object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (str(name), _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                kind = self._kinds.get(key[0])
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {kind}"
                    )
                inst = cls(key[0], key[1], **kwargs)
                self._instruments[key] = inst
                self._kinds[key[0]] = cls.kind
            elif not isinstance(inst, cls):  # pragma: no cover - guarded above
                raise ValueError(f"metric {name!r} has kind {inst.kind}")
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] | None = None,
        **labels,
    ) -> Histogram:
        if bounds is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, bounds=tuple(bounds))

    def instruments(self) -> list:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            return [
                self._instruments[k] for k in sorted(self._instruments)
            ]

    def snapshot(self) -> list[dict]:
        """JSON-safe dump: one record per instrument.

        Histogram bucket keys are stringified bounds (JSON objects cannot
        carry float keys).
        """
        out = []
        for inst in self.instruments():
            sample = inst.sample()
            if "buckets" in sample:
                sample["buckets"] = {
                    repr(b): n for b, n in sample["buckets"].items()
                }
            out.append(
                {
                    "name": inst.name,
                    "kind": inst.kind,
                    "labels": dict(inst.labels),
                    **sample,
                }
            )
        return out


class _NullInstrument:
    """Shared sink for every null counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    labels: LabelSet = ()
    value = 0.0
    count = 0
    sum = 0.0
    bounds = DEFAULT_BUCKETS

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def sample(self) -> dict:
        return {"value": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op :class:`MetricsRegistry` twin; the default everywhere."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def snapshot(self) -> list:
        return []


NULL_METRICS = NullMetrics()


def as_metrics(
    metrics: "MetricsRegistry | NullMetrics | None",
) -> "MetricsRegistry | NullMetrics":
    """Resolve an optional ``metrics`` parameter to a usable registry."""
    return NULL_METRICS if metrics is None else metrics

"""Prometheus text exposition (version 0.0.4) of a metrics registry.

:func:`prometheus_text` renders every instrument in a
:class:`~repro.obs.metrics.MetricsRegistry` in the plain-text format any
Prometheus-compatible scraper ingests; the service exposes it through
the ``prometheus`` query op.  :func:`parse_prometheus_text` is the
matching (subset) parser, used by the round-trip tests and handy for
scripting against a live service without a Prometheus client library.
"""

from __future__ import annotations

import math
import re

from .metrics import Histogram, MetricsRegistry

__all__ = ["parse_prometheus_text", "prometheus_text"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _sanitize(name: str, pattern: re.Pattern) -> str:
    if pattern.match(name):
        return name
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _fmt_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [
        (_sanitize(k, _LABEL_OK), str(v)) for k, v in (*labels, *extra)
    ]
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            k, v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for k, v in items
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text-exposition format."""
    lines: list[str] = []
    seen_type: set[str] = set()
    for inst in registry.instruments():
        name = _sanitize(inst.name, _NAME_OK)
        if name not in seen_type:
            lines.append(f"# TYPE {name} {inst.kind}")
            seen_type.add(name)
        if isinstance(inst, Histogram):
            sample = inst.sample()
            for bound, cum in sample["buckets"].items():
                lab = _fmt_labels(
                    inst.labels, (("le", _fmt_value(bound)),)
                )
                lines.append(f"{name}_bucket{lab} {_fmt_value(cum)}")
            inf_lab = _fmt_labels(inst.labels, (("le", "+Inf"),))
            lines.append(
                f"{name}_bucket{inf_lab} {_fmt_value(sample['count'])}"
            )
            plain = _fmt_labels(inst.labels)
            lines.append(f"{name}_sum{plain} {_fmt_value(sample['sum'])}")
            lines.append(f"{name}_count{plain} {_fmt_value(sample['count'])}")
        else:
            lines.append(
                f"{name}{_fmt_labels(inst.labels)} {_fmt_value(inst.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted_labels): value}``.

    Supports the subset :func:`prometheus_text` emits (no exemplars, no
    escaped newlines inside label values beyond ``\\n``).  ``# TYPE`` and
    other comment lines are skipped; malformed sample lines raise
    ``ValueError``.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line: {raw!r}")
        labels: list[tuple[str, str]] = []
        if m.group("labels"):
            for k, v in _LABEL.findall(m.group("labels")):
                labels.append(
                    (k, v.replace('\\"', '"').replace("\\n", "\n")
                        .replace("\\\\", "\\"))
                )
        key = (m.group("name"), tuple(sorted(labels)))
        out[key] = _parse_value(m.group("value"))
    return out

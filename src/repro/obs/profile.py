"""Named profiling workloads → one merged Perfetto timeline + metrics.

The NWHy evaluation (paper §VI) is built on per-phase measurement:
construction vs. traversal vs. relabeling time.  :func:`run_profile`
packages that workflow: pick a workload, run it under a live
:class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`, and write a ``trace.json``
whose timeline shows **both** kinds of event:

* pid 0 — Python-level wall-clock spans (construction stages, cache
  builds, service ops, runtime phases);
* pid 1+ — the simulated runtime's per-task schedules (the existing
  :mod:`repro.parallel.trace` exporter), one process per traced run.

Workloads:

``slinegraph``
    s-line graph construction on a traced simulated runtime (the Fig. 9
    measurement shape) plus the s-monotone derive for ``s+1``.
``smetrics``
    exact CC + BFS + the s-metrics report (the traversal workloads of
    Figs. 7–8).
``service``
    an in-process serving replay: register, warm, a mixed query batch,
    and a metrics scrape — exercising engine, cache, and histograms.

CLI: ``python -m repro profile --workload slinegraph --out trace.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["PROFILE_WORKLOADS", "merged_chrome_trace", "run_profile"]


def merged_chrome_trace(
    tracer: Tracer | None,
    ledgers: dict[str, "object"] | None = None,
) -> list[dict]:
    """Combine wall spans and simulated schedules into one event list.

    ``ledgers`` maps a display name to a
    :class:`~repro.parallel.cost.RunLedger`; each gets its own pid (1+)
    with a ``process_name`` metadata event, while the tracer's spans live
    on pid 0 (named ``python``).  The result is loadable by Perfetto /
    ``chrome://tracing`` as-is.
    """
    from repro.parallel.trace import chrome_trace_events

    events: list[dict] = []
    if tracer is not None and tracer.spans:
        events.append(_process_name(0, "python (wall clock)"))
        events.extend(tracer.chrome_trace_events(pid=0))
    for i, (name, ledger) in enumerate(sorted((ledgers or {}).items())):
        pid = i + 1
        events.append(_process_name(pid, f"simulated: {name}"))
        events.extend(chrome_trace_events(ledger, pid=pid))
    return events


def _process_name(pid: int, name: str) -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


# -- workloads -------------------------------------------------------------
def _workload_slinegraph(hg, s, threads, algorithm, tracer, metrics):
    from repro.parallel.runtime import ParallelRuntime

    rt = ParallelRuntime(
        num_threads=threads, partitioner="cyclic", trace=True, tracer=tracer
    )
    with tracer.span("profile.slinegraph", s=s, algorithm=algorithm):
        lg = hg.s_linegraph(
            s, algorithm=algorithm, runtime=rt, tracer=tracer, metrics=metrics
        )
    with tracer.span("profile.derive", s=s + 1):
        from repro.linegraph.common import filter_overlaps

        filter_overlaps(lg.edgelist, s + 1)
    return {"slinegraph": rt.ledger}, {
        "line_vertices": lg.num_vertices(),
        "line_edges": lg.num_edges(),
        "simulated_makespan": rt.ledger.makespan,
    }


def _workload_smetrics(hg, s, threads, algorithm, tracer, metrics):
    from repro.core.smetrics import s_metrics_report
    from repro.parallel.runtime import ParallelRuntime

    def traced_rt():
        return ParallelRuntime(
            num_threads=threads, partitioner="cyclic", trace=True,
            tracer=tracer,
        )

    rt_cc, rt_bfs = traced_rt(), traced_rt()
    with tracer.span("profile.cc"):
        hg.connected_components(
            runtime=rt_cc, tracer=tracer, metrics=metrics
        )
    with tracer.span("profile.bfs"):
        hg.bfs(0, runtime=rt_bfs, tracer=tracer, metrics=metrics)
    with tracer.span("profile.smetrics", s=s):
        report = s_metrics_report(hg.biadjacency, [s])
    return {"cc": rt_cc.ledger, "bfs": rt_bfs.ledger}, {
        "s_metrics": {k: v.summary() for k, v in report.items()},
        "simulated_makespan": rt_cc.ledger.makespan + rt_bfs.ledger.makespan,
    }


def _workload_service(hg, s, threads, algorithm, tracer, metrics):
    from repro.parallel.runtime import ParallelRuntime
    from repro.service.cache import SLineGraphCache
    from repro.service.engine import QueryEngine
    from repro.service.store import HypergraphStore

    store = HypergraphStore()
    store.register("profiled", hg)
    engine = QueryEngine(
        store=store,
        cache=SLineGraphCache(metrics=metrics, tracer=tracer),
        num_threads=threads,
        metrics=metrics,
        tracer=tracer,
    )
    rt = ParallelRuntime(
        num_threads=threads, partitioner="cyclic", trace=True, tracer=tracer
    )
    with tracer.span("profile.service"):
        engine.execute(
            {"op": "warm", "dataset": "profiled", "s_values": [1, s]}
        )
        n = hg.number_of_edges()
        batch = [
            {"op": "s_distance", "dataset": "profiled", "s": s,
             "src": i % n, "dst": (i * 7 + 1) % n}
            for i in range(16)
        ]
        batch.append({"op": "s_connected_components", "dataset": "profiled",
                      "s": s})
        engine.execute_batch(batch, runtime=rt)
        summary = engine.metrics()
    return {"query_batch": rt.ledger}, {
        "service_metrics": summary,
        "simulated_makespan": rt.ledger.makespan,
    }


PROFILE_WORKLOADS = {
    "slinegraph": _workload_slinegraph,
    "smetrics": _workload_smetrics,
    "service": _workload_service,
}


def run_profile(
    workload: str,
    dataset: str = "rand1",
    s: int = 2,
    threads: int = 8,
    algorithm: str = "hashmap",
    out: str | Path | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Run a named workload instrumented end to end; return the summary.

    When ``out`` is given the merged chrome trace is written there.  The
    returned dict carries the workload result card, the span summary,
    the metrics snapshot, and (when written) the trace path and event
    count.  Pass in a live ``tracer``/``metrics`` to accumulate across
    several runs.
    """
    try:
        fn = PROFILE_WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; choose from "
            f"{sorted(PROFILE_WORKLOADS)}"
        ) from None
    from repro.io.loader import load_hypergraph

    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    with tracer.span("profile.load", dataset=str(dataset)):
        hg = load_hypergraph(dataset)
    ledgers, card = fn(hg, int(s), int(threads), algorithm, tracer, metrics)
    events = merged_chrome_trace(tracer, ledgers)
    summary = {
        "workload": workload,
        "dataset": str(dataset),
        "s": int(s),
        "threads": int(threads),
        "algorithm": algorithm,
        "num_spans": len(tracer.spans),
        "num_events": len(events),
        "spans": tracer.summary(),
        "metrics": metrics.snapshot(),
        **card,
    }
    if out is not None:
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        summary["trace_path"] = str(out)
    return summary

"""Span-based wall-clock tracing with a true no-op default.

A :class:`Tracer` records nested **spans** — named wall-time intervals
with optional attributes — from anywhere in the stack::

    tracer = Tracer()
    with tracer.span("slinegraph.hashmap", s=2) as sp:
        ...
        sp.set(emitted=1234)

Spans nest per thread (a thread-local stack tracks the enclosing span)
and may be opened concurrently from many threads — the finished-span
list is lock-protected, so one tracer can observe a whole serving
session.

Uninstrumented code paths pay (almost) nothing: every instrumented
function defaults its ``tracer`` parameter to ``None``, which
:func:`as_tracer` resolves to the module-level :data:`NULL_TRACER`
singleton whose ``span()`` hands back one shared no-op context manager —
no allocation, no clock read, no locking.

Spans export to the Chrome ``traceEvents`` format
(:meth:`Tracer.chrome_trace_events`), merge-compatible with the
simulated-schedule exporter in :mod:`repro.parallel.trace` — see
:func:`repro.obs.profile.merged_chrome_trace` for the combined
Perfetto timeline.
"""

from __future__ import annotations

import threading
import time

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer", "as_tracer"]


class Span:
    """One named wall-time interval with attributes (context manager)."""

    __slots__ = (
        "name", "attrs", "start_s", "end_s", "parent", "depth", "tid",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = str(name)
        self.attrs = attrs
        self.start_s: float = 0.0
        self.end_s: float = 0.0
        self.parent: str | None = None
        self.depth: int = 0
        self.tid: int = 0

    @property
    def duration_s(self) -> float:
        """Wall duration in seconds (0 until the span has closed)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def as_dict(self) -> dict:
        """JSON-safe description of the finished span."""
        return {
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"attrs={self.attrs})"
        )


class Tracer:
    """Collects finished :class:`Span`\\ s; thread-safe, nesting-aware."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._stacks = threading.local()
        self._tids: dict[int, int] = {}
        #: wall-clock origin all exported timestamps are relative to
        self.epoch_s = time.perf_counter()

    # -- recording ---------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a span: ``with tracer.span("phase", s=2) as sp: ...``"""
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        try:
            return self._stacks.stack
        except AttributeError:
            self._stacks.stack = []
            return self._stacks.stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent = stack[-1].name
            span.depth = len(stack)
        span.tid = self._thread_index()
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; keep the stack coherent
            stack.remove(span)
        with self._lock:
            self._spans.append(span)

    def _thread_index(self) -> int:
        """Small stable per-thread integer (Perfetto-friendly tids)."""
        ident = threading.get_ident()
        with self._lock:
            return self._tids.setdefault(ident, len(self._tids))

    # -- introspection -----------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order (snapshot copy)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def summary(self) -> dict[str, dict]:
        """Per-name aggregate: ``{name: {count, total_ms, max_ms}}``."""
        out: dict[str, dict] = {}
        for sp in self.spans:
            agg = out.setdefault(
                sp.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            ms = sp.duration_s * 1e3
            agg["count"] += 1
            agg["total_ms"] += ms
            agg["max_ms"] = max(agg["max_ms"], ms)
        for agg in out.values():
            agg["total_ms"] = round(agg["total_ms"], 3)
            agg["max_ms"] = round(agg["max_ms"], 3)
        return out

    # -- export ------------------------------------------------------------
    def chrome_trace_events(self, pid: int = 0) -> list[dict]:
        """Finished spans as complete ('X') Chrome trace events (µs)."""
        events = []
        for sp in self.spans:
            args = {k: _json_safe(v) for k, v in sp.attrs.items()}
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.parent or "span",
                    "ph": "X",
                    "ts": max(0.0, (sp.start_s - self.epoch_s) * 1e6),
                    "dur": sp.duration_s * 1e6,
                    "pid": pid,
                    "tid": sp.tid,
                    "args": args,
                }
            )
        return events


class NullSpan:
    """Shared do-nothing span — the cost of ``with`` and nothing else."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}
    duration_s = 0.0

    def set(self, **attrs) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullTracer:
    """No-op :class:`Tracer` stand-in; the default everywhere."""

    __slots__ = ()
    enabled = False
    epoch_s = 0.0

    def span(self, name: str, **attrs) -> NullSpan:
        return _NULL_SPAN

    @property
    def spans(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def summary(self) -> dict:
        return {}

    def chrome_trace_events(self, pid: int = 0) -> list[dict]:
        return []


NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Resolve an optional ``tracer`` parameter to a usable instance."""
    return NULL_TRACER if tracer is None else tracer


def _json_safe(v):
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    try:  # numpy scalars and similar
        return v.item()
    except AttributeError:
        return str(v)

"""Vectorized traversal primitives shared by every graph algorithm.

The fundamental operation of frontier-based algorithms is "gather the
neighbor lists of this set of vertices".  Doing that with a Python loop per
vertex would dominate runtime; :func:`gather_neighbors` performs it as a
single fancy-indexing expression (the standard cumsum/repeat multi-slice
trick), so BFS/CC/SSSP process whole frontiers per NumPy call.
"""

from __future__ import annotations

import numpy as np

from repro.structures.csr import CSR

__all__ = ["gather_neighbors", "multi_slice", "frontier_edge_count"]


def multi_slice(
    data: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``data[starts[i] : starts[i] + counts[i]]`` for all *i*.

    Fully vectorized: builds the flat gather index with one ``arange``,
    one ``cumsum``, and a single ``repeat``.  For output position ``k``
    inside slice ``i`` the index is ``k + (starts[i] - cum[i-1])`` — the
    per-slice shift from running-output offset to data offset — so one
    repeated shift replaces the two repeats of the classic formulation
    (measurably faster: the repeat is the dominant cost at two-hop
    expansion sizes).
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    cum = np.cumsum(counts)
    shift = np.repeat(starts - cum + counts, counts)
    return data[np.arange(total, dtype=np.int64) + shift]


def gather_neighbors(
    graph: CSR, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All neighbors of ``vertices``, with their source vertex repeated.

    Returns ``(sources, targets)`` — the COO rows of the sub-adjacency
    induced by the given source set, in row order.  ``sources[k]`` is the
    frontier vertex whose list produced ``targets[k]``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.indptr[vertices]
    counts = graph.indptr[vertices + 1] - starts
    targets = multi_slice(graph.indices, starts, counts)
    sources = np.repeat(vertices, counts)
    return sources, targets


def frontier_edge_count(graph: CSR, vertices: np.ndarray) -> int:
    """Total out-degree of a frontier (direction-optimizing heuristic input)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    return int((graph.indptr[vertices + 1] - graph.indptr[vertices]).sum())

"""Single-source shortest paths: Dijkstra and delta-stepping.

Backs the ``s_distance`` / ``s_path`` queries of the Python API
(Listing 5).  s-line graphs are unweighted by default (every edge is one
"s-walk step"), but the constructions can carry overlap sizes as weights,
so both engines handle arbitrary non-negative weights.

Delta-stepping is the classic parallel-friendly formulation (bucketed
relaxation); it runs bucket-synchronously and, given a runtime, charges the
relaxation work per bucket so SSSP scaling can be studied like BFS/CC.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import gather_neighbors, multi_slice

__all__ = ["dijkstra", "delta_stepping", "shortest_path", "sssp"]

_INF = np.inf


def _edge_weights(graph: CSR, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    if graph.weights is None:
        return np.ones(int(counts.sum()), dtype=np.float64)
    return multi_slice(graph.weights, starts, counts)


def dijkstra(
    graph: CSR, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """Binary-heap Dijkstra. Returns ``(dist, parent)``; unreachable = inf/-1."""
    n = graph.num_vertices()
    dist = np.full(n, _INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, int(source))]
    done = np.zeros(n, dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    weights = graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        nbrs = indices[lo:hi]
        w = np.ones(hi - lo) if weights is None else weights[lo:hi]
        nd = d + w
        better = nd < dist[nbrs]
        for v, dv in zip(nbrs[better].tolist(), nd[better].tolist()):
            dist[v] = dv
            parent[v] = u
            heapq.heappush(heap, (dv, v))
    return dist, parent


def delta_stepping(
    graph: CSR,
    source: int,
    delta: float | None = None,
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bucketed SSSP (Meyer & Sanders). Returns ``(dist, parent)``.

    ``delta`` defaults to ``max(1, average edge weight)``.  Each bucket is
    settled by repeated vectorized relaxation of its out-edges; vertices
    whose tentative distance improves re-enter the bucket structure.
    """
    n = graph.num_vertices()
    dist = np.full(n, _INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    if delta is None:
        if graph.weights is None or graph.weights.size == 0:
            delta = 1.0
        else:
            delta = max(1.0, float(graph.weights.mean()))
    bucket_of = lambda d: np.floor(d / delta).astype(np.int64)  # noqa: E731
    current = 0
    pending = {int(source)}
    max_rounds = 0
    while pending:
        in_bucket = np.array(sorted(pending), dtype=np.int64)
        sel = in_bucket[bucket_of(dist[in_bucket]) == current]
        if sel.size == 0:
            finite = np.array(sorted(pending), dtype=np.int64)
            remaining = bucket_of(dist[finite])
            current = int(remaining.min())
            continue
        for v in sel.tolist():
            pending.discard(v)
        frontier = sel
        while frontier.size:
            max_rounds += 1
            src, dst = gather_neighbors(graph, frontier)
            starts = graph.indptr[frontier]
            counts = graph.indptr[frontier + 1] - starts
            w = _edge_weights(graph, starts, counts)
            cand = dist[src] + w
            if runtime is not None:
                runtime.parallel_for(
                    runtime.partition(frontier),
                    lambda c: TaskResult(
                        None,
                        float(
                            (graph.indptr[c + 1] - graph.indptr[c]).sum()
                            + c.size
                        ),
                    ),
                    phase=f"delta_relax_{max_rounds}",
                )
            improved = cand < dist[dst]
            dst_i, cand_i, src_i = dst[improved], cand[improved], src[improved]
            # combine duplicates: keep the minimum per target
            order = np.lexsort((cand_i, dst_i))
            dst_i, cand_i, src_i = dst_i[order], cand_i[order], src_i[order]
            keep = np.ones(dst_i.size, dtype=bool)
            keep[1:] = dst_i[1:] != dst_i[:-1]
            dst_i, cand_i, src_i = dst_i[keep], cand_i[keep], src_i[keep]
            really = cand_i < dist[dst_i]
            dst_i, cand_i, src_i = dst_i[really], cand_i[really], src_i[really]
            dist[dst_i] = cand_i
            parent[dst_i] = src_i
            same = bucket_of(cand_i) == current
            frontier = dst_i[same]
            for v in dst_i[~same].tolist():
                pending.add(v)
        if not pending:
            break
        finite = np.array(sorted(pending), dtype=np.int64)
        current = int(bucket_of(dist[finite]).min())
    return dist, parent


def sssp(
    graph: CSR,
    source: int,
    algorithm: str = "dijkstra",
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch: ``'dijkstra'`` or ``'delta_stepping'``."""
    if algorithm == "dijkstra":
        return dijkstra(graph, source)
    if algorithm == "delta_stepping":
        return delta_stepping(graph, source, runtime=runtime)
    raise ValueError(f"unknown SSSP algorithm {algorithm!r}")


def shortest_path(
    graph: CSR, source: int, target: int, algorithm: str = "dijkstra"
) -> list[int]:
    """Reconstruct one shortest path ``source → target`` (empty if none)."""
    dist, parent = sssp(graph, source, algorithm)
    if not np.isfinite(dist[target]):
        return []
    path = [int(target)]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path

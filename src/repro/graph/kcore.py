"""k-core decomposition — backs ``s_core_number`` on line graphs.

Hygra/MESH/HyperX ship k-core (paper §V); on an s-line graph the core
number measures how deeply a hyperedge sits inside a strongly-overlapping
cluster.  Implemented as the standard peeling algorithm, processed in
whole degree-levels per round (the "bucket" formulation parallel versions
use), so the runtime-accounted variant charges one phase per peel level.

Self-loops are not expected (construction never emits them); parallel
edges contribute multiplicity like networkx's ``core_number`` on
multigraphs would.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import gather_neighbors

__all__ = ["core_number", "k_core_subgraph"]


def core_number(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> np.ndarray:
    """Core number of every vertex of an undirected (symmetric) CSR."""
    n = graph.num_vertices()
    degree = graph.degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    rounds = 0
    while remaining:
        k = max(k, int(degree[alive].min()))
        peel = np.flatnonzero(alive & (degree <= k))
        while peel.size:
            rounds += 1
            core[peel] = k
            alive[peel] = False
            remaining -= peel.size
            src, dst = gather_neighbors(graph, peel)
            if runtime is not None:
                runtime.parallel_for(
                    runtime.partition(peel),
                    lambda c: TaskResult(
                        None,
                        float((graph.indptr[c + 1] - graph.indptr[c]).sum()
                              + c.size),
                    ),
                    phase=f"kcore_peel_{rounds}",
                )
            live_hits = dst[alive[dst]]
            np.subtract.at(degree, live_hits, 1)
            peel = np.flatnonzero(alive & (degree <= k))
    return core


def k_core_subgraph(graph: CSR, k: int) -> np.ndarray:
    """Vertices of the k-core (maximal subgraph of min degree ≥ k)."""
    return np.flatnonzero(core_number(graph) >= k)

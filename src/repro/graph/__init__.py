"""NWGraph substrate: parallel graph algorithms on CSR structures.

BFS (top-down / bottom-up / direction-optimizing), connected components
(label propagation / Shiloach–Vishkin / Afforest), SSSP (Dijkstra /
delta-stepping), Brandes betweenness, and distance-derived centralities.
Every algorithm optionally runs through the simulated
:class:`~repro.parallel.runtime.ParallelRuntime` for scaling studies.
"""

from .betweenness import betweenness_centrality, betweenness_centrality_weighted
from .bfs import bfs_bottom_up, bfs_direction_optimizing, bfs_top_down
from .kcore import core_number, k_core_subgraph
from .mis import maximal_independent_set
from .pagerank import pagerank
from .communities import label_propagation_communities
from .cc import (
    cc_afforest,
    cc_label_propagation,
    cc_shiloach_vishkin,
    compress_labels,
    connected_components,
)
from .paths import (
    all_pairs_hop_distance,
    closeness_centrality,
    diameter,
    eccentricity,
    harmonic_closeness_centrality,
)
from .sssp import delta_stepping, dijkstra, shortest_path, sssp
from .triangles import (
    clustering_coefficient,
    triangle_count,
    triangles_per_vertex,
)
from .traversal import frontier_edge_count, gather_neighbors, multi_slice

__all__ = [
    "all_pairs_hop_distance",
    "betweenness_centrality",
    "betweenness_centrality_weighted",
    "bfs_bottom_up",
    "bfs_direction_optimizing",
    "bfs_top_down",
    "cc_afforest",
    "cc_label_propagation",
    "cc_shiloach_vishkin",
    "closeness_centrality",
    "clustering_coefficient",
    "compress_labels",
    "connected_components",
    "core_number",
    "delta_stepping",
    "diameter",
    "dijkstra",
    "eccentricity",
    "frontier_edge_count",
    "gather_neighbors",
    "harmonic_closeness_centrality",
    "k_core_subgraph",
    "label_propagation_communities",
    "maximal_independent_set",
    "multi_slice",
    "pagerank",
    "shortest_path",
    "sssp",
    "triangle_count",
    "triangles_per_vertex",
]

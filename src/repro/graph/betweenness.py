"""Betweenness centrality (Brandes) — backs ``s_betweenness_centrality``.

Level-synchronous Brandes for unweighted graphs: one BFS per source
accumulating shortest-path counts (sigma), then a reverse sweep
accumulating dependencies.  Both sweeps are vectorized per level
(``np.add.at`` over the frontier's edges), so per-source cost is O(m) NumPy
work rather than O(m) Python work.

``sources`` may be a subset for the standard sampling approximation; exact
results use all vertices (the default).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import gather_neighbors

__all__ = ["betweenness_centrality", "betweenness_centrality_weighted"]


def _brandes_source(graph: CSR, s: int, bc: np.ndarray) -> int:
    """Accumulate one source's dependency contributions into ``bc``.

    Returns the number of edges traversed (both sweeps) for cost ledgers.
    """
    n = graph.num_vertices()
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[s] = 0
    sigma[s] = 1.0
    levels: list[np.ndarray] = [np.array([s], dtype=np.int64)]
    work = 0
    # forward: BFS levels with path counting
    while levels[-1].size:
        frontier = levels[-1]
        src, dst = gather_neighbors(graph, frontier)
        work += int(dst.size)
        depth = len(levels)
        undiscovered = dist[dst] == -1
        dist[dst[undiscovered]] = depth
        on_sp = dist[dst] == depth
        np.add.at(sigma, dst[on_sp], sigma[src[on_sp]])
        levels.append(np.unique(dst[undiscovered]))
    # backward: dependency accumulation
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(levels[:-1]):
        if not frontier.size:
            continue
        src, dst = gather_neighbors(graph, frontier)
        work += int(dst.size)
        downstream = dist[dst] == dist[src] + 1
        src_d, dst_d = src[downstream], dst[downstream]
        contrib = (sigma[src_d] / sigma[dst_d]) * (1.0 + delta[dst_d])
        np.add.at(delta, src_d, contrib)
    mask = np.ones(n, dtype=bool)
    mask[s] = False
    bc[mask] += delta[mask]
    return work


def _brandes_source_weighted(graph: CSR, s: int, bc: np.ndarray) -> None:
    """Weighted Brandes (Dijkstra order) for one source."""
    import heapq

    n = graph.num_vertices()
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    dist[s] = 0.0
    sigma[s] = 1.0
    preds: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, s)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        order.append(u)
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = int(indices[k])
            w = 1.0 if weights is None else float(weights[k])
            nd = d + w
            if nd < dist[v] - 1e-12:
                dist[v] = nd
                sigma[v] = sigma[u]
                preds[v] = [u]
                heapq.heappush(heap, (nd, v))
            elif abs(nd - dist[v]) <= 1e-12 and not done[v]:
                sigma[v] += sigma[u]
                preds[v].append(u)
    delta = np.zeros(n)
    for v in reversed(order):
        for u in preds[v]:
            delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v])
        if v != s:
            bc[v] += delta[v]


def betweenness_centrality_weighted(
    graph: CSR,
    normalized: bool = True,
    sources: np.ndarray | None = None,
) -> np.ndarray:
    """Brandes betweenness with edge weights as *lengths* (Dijkstra order).

    Matches ``networkx.betweenness_centrality(weight='weight')`` on
    undirected graphs.  For s-line graphs, pass inverse-overlap lengths so
    strong overlaps read as short edges (see ``SLineGraph.s_sssp``).
    """
    n = graph.num_vertices()
    bc = np.zeros(n)
    all_sources = (
        np.arange(n, dtype=np.int64)
        if sources is None
        else np.asarray(sources, dtype=np.int64)
    )
    for s in all_sources.tolist():
        _brandes_source_weighted(graph, s, bc)
    bc *= 0.5
    if sources is not None and all_sources.size and all_sources.size < n:
        bc *= n / all_sources.size
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc


def betweenness_centrality(
    graph: CSR,
    normalized: bool = True,
    sources: np.ndarray | None = None,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Exact (or source-sampled) betweenness of an undirected CSR graph.

    Matches ``networkx.betweenness_centrality`` conventions: undirected
    graphs halve the accumulated dependencies, and normalization divides by
    ``(n-1)(n-2)/2``.  With a ``sources`` subset, the sampled sum is scaled
    by ``n / len(sources)`` before normalization (standard estimator).
    """
    n = graph.num_vertices()
    bc = np.zeros(n, dtype=np.float64)
    if n == 0:
        return bc
    all_sources = np.arange(n, dtype=np.int64) if sources is None else (
        np.asarray(sources, dtype=np.int64)
    )
    if runtime is None:
        for s in all_sources.tolist():
            _brandes_source(graph, s, bc)
    else:
        chunks = runtime.partition(all_sources)

        def body(chunk: np.ndarray) -> TaskResult:
            work = 0
            for s in chunk.tolist():
                work += _brandes_source(graph, s, bc)
            return TaskResult(None, float(work + chunk.size))

        runtime.parallel_for(chunks, body, phase="brandes_sources")
    bc *= 0.5  # undirected: every path counted from both endpoints
    if sources is not None and all_sources.size and all_sources.size < n:
        bc *= n / all_sources.size
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc

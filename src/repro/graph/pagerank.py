"""PageRank on CSR graphs — backs ``s_pagerank`` on line graphs.

The related hypergraph frameworks the paper compares against (MESH,
HyperX, Hygra §V) all ship PageRank; NWHy's "any graph algorithm on the
approximation" workflow gets it from the graph substrate.  Standard power
iteration with uniform teleport, dangling-mass redistribution, and L1
convergence — matching ``networkx.pagerank`` semantics for unweighted and
weighted graphs.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

__all__ = ["pagerank"]


def pagerank(
    graph: CSR,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: np.ndarray | None = None,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Power-iteration PageRank; returns a probability vector.

    ``personalization`` (optional) biases the teleport distribution; it is
    normalized internally.  Raises ``RuntimeError`` if the iteration does
    not reach ``tol`` within ``max_iter`` rounds (networkx behaviour).
    """
    n = graph.num_vertices()
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if personalization is None:
        teleport = np.full(n, 1.0 / n)
    else:
        teleport = np.asarray(personalization, dtype=np.float64)
        if teleport.shape != (n,) or teleport.sum() <= 0:
            raise ValueError("personalization must be positive length-n")
        teleport = teleport / teleport.sum()
    # column-stochastic transition: out-weight-normalized
    m = graph.to_scipy()
    out = np.asarray(m.sum(axis=1)).ravel()
    dangling = out == 0
    inv_out = np.where(dangling, 0.0, 1.0 / np.where(dangling, 1.0, out))
    rank = teleport.copy()
    for it in range(max_iter):
        spread = m.T @ (rank * inv_out)
        dangling_mass = rank[dangling].sum()
        new = damping * (spread + dangling_mass * teleport) + (
            1.0 - damping
        ) * teleport
        if runtime is not None:
            runtime.parallel_for(
                runtime.partition(n),
                lambda c: TaskResult(
                    None,
                    float((graph.indptr[c + 1] - graph.indptr[c]).sum()
                          + c.size),
                ),
                phase=f"pagerank_iter_{it}",
            )
        err = np.abs(new - rank).sum()
        rank = new
        if err < tol:
            return rank
    raise RuntimeError(f"pagerank failed to converge in {max_iter} iterations")

"""Connected components: label propagation, Shiloach–Vishkin, Afforest.

The three CC engines the paper discusses (§III-C.2, §V):

* **label propagation** (Orzan [22], Yan et al. [28]) — every vertex
  repeatedly takes the minimum label in its closed neighborhood; the
  algorithm behind HyperCC and HygraCC;
* **Shiloach–Vishkin** [24] — min-hooking + pointer jumping;
* **Afforest** (Sutton et al. [27]) — link a small neighbor sample, skip
  the giant component discovered by sampling, finish the rest; the engine
  behind AdjoinCC.

All variants return a canonical labeling: ``labels[v]`` is the smallest
vertex ID in *v*'s component, so different engines (and different simulated
schedules) produce byte-identical outputs.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.atomics import write_min
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import gather_neighbors

__all__ = [
    "cc_label_propagation",
    "cc_shiloach_vishkin",
    "cc_afforest",
    "connected_components",
    "compress_labels",
]


def _canonicalize(parent: np.ndarray) -> np.ndarray:
    """Full pointer-jumping: flatten the parent forest to root labels."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def cc_label_propagation(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> np.ndarray:
    """Min-label propagation over an undirected (symmetric) CSR.

    Each round, every vertex pushes its label onto its neighbors and the
    minimum wins (atomic ``write_min`` semantics).  Terminates when a round
    changes nothing.  O(diameter) rounds.
    """
    n = graph.num_vertices()
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return labels
    rounds = 0
    while True:
        rounds += 1
        if runtime is None:
            src, dst = graph.neighborhood_pairs()
            changed = write_min(labels, dst, labels[src])
        else:
            chunks = runtime.partition(n)
            parts = runtime.parallel_for(
                chunks,
                lambda c: _lp_task(graph, labels, c),
                phase=f"lp_round_{rounds}",
            )
            changed = sum(parts)
        if not changed:
            break
    return labels


def _lp_task(graph: CSR, labels: np.ndarray, chunk: np.ndarray) -> TaskResult:
    src, dst = gather_neighbors(graph, chunk)
    changed = write_min(labels, dst, labels[src])
    return TaskResult(changed, float(dst.size + chunk.size))


def cc_shiloach_vishkin(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> np.ndarray:
    """Shiloach–Vishkin connectivity: min-hooking + pointer jumping [24]."""
    n = graph.num_vertices()
    parent = np.arange(n, dtype=np.int64)
    if graph.num_edges() == 0:
        return parent
    src, dst = graph.neighborhood_pairs()
    rounds = 0
    while True:
        rounds += 1
        pu, pv = parent[src], parent[dst]
        mask = pu != pv
        if not mask.any():
            break
        hi = np.where(pu > pv, pu, pv)[mask]
        lo = np.where(pu > pv, pv, pu)[mask]
        changed = write_min(parent, hi, lo)
        if runtime is not None:
            runtime.serial_phase(0.0, phase=f"sv_round_{rounds}")
            chunks = runtime.partition(n)
            runtime.parallel_for(
                chunks, lambda c: TaskResult(None, float(c.size)), phase="sv_jump"
            )
        parent = _canonicalize(parent)
        if not changed:
            break
    return _canonicalize(parent)


def cc_afforest(
    graph: CSR,
    runtime: ParallelRuntime | None = None,
    neighbor_rounds: int = 2,
    sample_size: int = 1024,
    seed: int = 42,
) -> np.ndarray:
    """Afforest [27]: sample-link, skip the giant component, finish the rest.

    Phase 1 links each vertex to its first ``neighbor_rounds`` neighbors.
    Phase 2 samples components to find the (likely) largest one, ``c``.
    Phase 3 processes the *remaining* neighbor lists only for vertices not
    already in ``c`` — skipping most of the edge work on real-world graphs
    with a dominant giant component (the optimization AdjoinCC leverages).
    """
    n = graph.num_vertices()
    parent = np.arange(n, dtype=np.int64)
    if n == 0:
        return parent
    degrees = graph.degrees()

    def link_edges(u: np.ndarray, w: np.ndarray, phase: str) -> int:
        """Min-hook both endpoints' roots repeatedly until stable."""
        nonlocal parent
        total = 0
        rounds = 0
        while True:
            rounds += 1
            pu, pw = parent[u], parent[w]
            mask = pu != pw
            if not mask.any():
                break
            hi = np.where(pu > pw, pu, pw)[mask]
            lo = np.where(pu > pw, pw, pu)[mask]
            changed = write_min(parent, hi, lo)
            parent = _canonicalize(parent)
            total += changed
            if not changed:
                break
        if runtime is not None and u.size:
            # hook scans are per-edge; compression touches every vertex
            runtime.parallel_for(
                runtime.partition(u.size),
                lambda c: TaskResult(None, float(c.size * rounds)),
                phase=f"{phase}_hook",
            )
            runtime.parallel_for(
                runtime.partition(n),
                lambda c: TaskResult(None, float(c.size)),
                phase=f"{phase}_compress",
            )
        return total

    # Phase 1: neighbor-sample linking.
    for r in range(neighbor_rounds):
        has_r = np.flatnonzero(degrees > r)
        if has_r.size == 0:
            break
        nbr_r = graph.indices[graph.indptr[has_r] + r]
        if runtime is not None:
            runtime.parallel_for(
                runtime.partition(has_r),
                lambda c: TaskResult(None, float(c.size)),
                phase=f"afforest_sample_{r}",
            )
        link_edges(has_r, nbr_r, phase=f"afforest_link_{r}")

    # Phase 2: estimate the giant component by sampling labels.
    rng = np.random.default_rng(seed)
    probe = (
        parent
        if n <= sample_size
        else parent[rng.integers(0, n, size=sample_size)]
    )
    values, counts = np.unique(probe, return_counts=True)
    giant = int(values[np.argmax(counts)])

    # Phase 3: finish the remaining adjacency of vertices outside `giant`.
    todo = np.flatnonzero((parent != giant) & (degrees > neighbor_rounds))
    if todo.size:
        starts = graph.indptr[todo] + neighbor_rounds
        counts_rem = graph.indptr[todo + 1] - starts
        from .traversal import multi_slice

        rem_targets = multi_slice(graph.indices, starts, counts_rem)
        rem_sources = np.repeat(todo, counts_rem)
        if runtime is not None:
            runtime.parallel_for(
                runtime.partition(todo),
                lambda c: TaskResult(
                    None,
                    float(
                        (graph.indptr[c + 1] - graph.indptr[c] - neighbor_rounds)
                        .clip(min=0)
                        .sum()
                        + c.size
                    ),
                ),
                phase="afforest_finish",
            )
        link_edges(rem_sources, rem_targets, phase="afforest_finish_link")
    return _canonicalize(parent)


_ENGINES = {
    "label_propagation": cc_label_propagation,
    "shiloach_vishkin": cc_shiloach_vishkin,
    "afforest": cc_afforest,
}


def connected_components(
    graph: CSR,
    algorithm: str = "afforest",
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Dispatch to a CC engine by name; canonical min-ID labels out."""
    try:
        engine = _ENGINES[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown CC algorithm {algorithm!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return engine(graph, runtime=runtime)


def compress_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber arbitrary component labels to compact ``0..k-1`` (stable)."""
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)

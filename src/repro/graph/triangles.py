"""Triangle counting and clustering coefficients on CSR graphs.

A staple of the NWGraph substrate (triangle counting is one of its
flagship kernels) and the engine behind the s-clustering-coefficient
metric of :mod:`repro.core.smetrics`: how clique-ish is the neighborhood
of a hyperedge in the s-line graph?

The kernel is the standard sorted-adjacency merge: for every edge
``(u, v)`` with ``u < v``, count common neighbors ``w > v`` — each
triangle counted exactly once, fully vectorized per vertex block via the
same batched intersection used by the line-graph algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

__all__ = ["triangle_count", "triangles_per_vertex", "clustering_coefficient"]


def _per_vertex_triangles(graph: CSR, chunk: np.ndarray) -> tuple[np.ndarray, int]:
    """Triangles per vertex, each triangle credited to ALL three corners."""
    counts = np.zeros(graph.num_vertices(), dtype=np.int64)
    in_nbr = np.zeros(graph.num_vertices(), dtype=bool)  # reused scratch
    work = 0
    for u in chunk.tolist():
        nbrs = graph[u]
        nbrs = nbrs[nbrs != u]
        if nbrs.size < 2:
            continue
        in_nbr[nbrs] = True
        # count, for each neighbor v, how many of v's neighbors are also
        # neighbors of u: sum over closed wedges at u
        starts = graph.indptr[nbrs]
        sizes = graph.indptr[nbrs + 1] - starts
        from .traversal import multi_slice

        two_hop = multi_slice(graph.indices, starts, sizes)
        work += int(two_hop.size)
        counts[u] = int(in_nbr[two_hop].sum()) // 2  # each triangle seen twice
        in_nbr[nbrs] = False  # reset scratch for the next vertex
    return counts, work


def triangles_per_vertex(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> np.ndarray:
    """Number of triangles through each vertex (undirected simple CSR)."""
    ids = np.arange(graph.num_vertices(), dtype=np.int64)
    if runtime is None:
        counts, _ = _per_vertex_triangles(graph, ids)
        return counts
    total = np.zeros(graph.num_vertices(), dtype=np.int64)

    def body(chunk: np.ndarray) -> TaskResult:
        counts, work = _per_vertex_triangles(graph, chunk)
        return TaskResult(counts[chunk], float(work + chunk.size))

    # combine after the phase: each chunk owns a disjoint vertex range,
    # so scattering the returned slices is race-free on any runtime
    chunks = runtime.partition(ids)
    for chunk, per_vertex in zip(
        chunks, runtime.parallel_for(chunks, body, phase="triangles")
    ):
        total[chunk] = per_vertex
    return total


def triangle_count(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> int:
    """Total number of distinct triangles."""
    return int(triangles_per_vertex(graph, runtime).sum()) // 3


def clustering_coefficient(
    graph: CSR, runtime: ParallelRuntime | None = None
) -> np.ndarray:
    """Local clustering coefficient per vertex (0 for degree < 2).

    Matches ``networkx.clustering`` on simple undirected graphs.
    """
    tri = triangles_per_vertex(graph, runtime)
    deg = graph.degrees().astype(np.float64)
    possible = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(possible > 0, tri / possible, 0.0)
    return cc

"""Maximal independent set (Luby-style) — a §V framework staple.

On an s-line graph, an MIS is a maximal set of pairwise *non*-overlapping
(below threshold s) hyperedges — useful for picking representative,
weakly-redundant hyperedges.  Implemented as deterministic Luby rounds:
every round, vertices whose (seeded) random priority beats all live
neighbors enter the set and knock out their neighborhood.  Deterministic
given the seed, schedule-independent by construction.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import gather_neighbors

__all__ = ["maximal_independent_set"]


def maximal_independent_set(
    graph: CSR,
    seed: int = 0,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """A maximal independent set (vertex IDs, ascending).

    Luby's algorithm with static per-vertex priorities: O(log n) expected
    rounds, each fully vectorized.
    """
    n = graph.num_vertices()
    rng = np.random.default_rng(seed)
    # strict total order on priorities: random permutation
    priority = rng.permutation(n)
    in_set = np.zeros(n, dtype=bool)
    live = np.ones(n, dtype=bool)
    rounds = 0
    while live.any():
        rounds += 1
        candidates = np.flatnonzero(live)
        src, dst = gather_neighbors(graph, candidates)
        keep = live[dst]
        src, dst = src[keep], dst[keep]
        # a candidate wins if no live neighbor has higher priority
        loses = np.zeros(n, dtype=bool)
        losing = priority[src] < priority[dst]
        loses[src[losing]] = True
        winners = candidates[~loses[candidates]]
        if runtime is not None:
            runtime.parallel_for(
                runtime.partition(candidates),
                lambda c: TaskResult(
                    None,
                    float((graph.indptr[c + 1] - graph.indptr[c]).sum()
                          + c.size),
                ),
                phase=f"mis_round_{rounds}",
            )
        in_set[winners] = True
        live[winners] = False
        _, knocked = gather_neighbors(graph, winners)
        live[knocked] = False
    return np.flatnonzero(in_set)

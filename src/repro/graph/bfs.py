"""Breadth-first search: top-down, bottom-up, and direction-optimizing.

The three variants NWGraph provides and the paper's AdjoinBFS builds on
(§III-C.2, citing Beamer et al. [5]):

* **top-down** expands the frontier's out-edges;
* **bottom-up** scans *unvisited* vertices for any parent in the frontier —
  cheaper when the frontier covers most of the graph;
* **direction-optimizing** switches between the two with Beamer's α/β
  heuristic.

All variants are level-synchronous and vectorized per level; when a
:class:`~repro.parallel.runtime.ParallelRuntime` is supplied, each level is
chunked through it so the simulated scheduler sees the real per-chunk edge
work (this is how Fig. 8's scaling curves are produced).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .traversal import frontier_edge_count, gather_neighbors

__all__ = ["bfs_top_down", "bfs_bottom_up", "bfs_direction_optimizing"]

# Beamer's published defaults.
ALPHA = 15.0
BETA = 18.0


def _expand_top_down(
    graph: CSR,
    frontier: np.ndarray,
    dist: np.ndarray,
    parent: np.ndarray,
    level: int,
) -> tuple[np.ndarray, int]:
    """One vectorized top-down step; returns (next frontier, edges touched)."""
    sources, targets = gather_neighbors(graph, frontier)
    fresh = dist[targets] < 0
    sources, targets = sources[fresh], targets[fresh]
    # first-writer-wins among duplicates == successful CAS
    uniq, first = np.unique(targets, return_index=True)
    dist[uniq] = level
    parent[uniq] = sources[first]
    return uniq, int(fresh.size)


def _expand_bottom_up(
    graph: CSR,
    in_frontier: np.ndarray,
    dist: np.ndarray,
    parent: np.ndarray,
    level: int,
    candidates: np.ndarray,
) -> tuple[np.ndarray, int]:
    """One bottom-up step over ``candidates`` (the unvisited vertex set)."""
    sources, targets = gather_neighbors(graph, candidates)
    hits = in_frontier[targets]
    src_hit, par_hit = sources[hits], targets[hits]
    uniq, first = np.unique(src_hit, return_index=True)
    dist[uniq] = level
    parent[uniq] = par_hit[first]
    return uniq, int(targets.size)


def bfs_top_down(
    graph: CSR,
    source: int,
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Classic level-synchronous top-down BFS.

    Returns ``(dist, parent)``; unreachable vertices get ``dist == -1`` and
    ``parent == -1``.  This is also the algorithm HygraBFS uses
    (:mod:`repro.baselines.hygra`).
    """
    n = graph.num_vertices()
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        if runtime is None:
            frontier, _ = _expand_top_down(graph, frontier, dist, parent, level)
        else:
            chunks = runtime.partition(frontier)
            parts = runtime.parallel_for(
                chunks,
                lambda c: _task_top_down(graph, c, dist, parent, level),
                phase=f"bfs_td_level_{level}",
            )
            frontier = _merge_frontier(parts)
    return dist, parent


def _task_top_down(graph, chunk, dist, parent, level):
    nxt, work = _expand_top_down(graph, chunk, dist, parent, level)
    return TaskResult(nxt, work + chunk.size)


def _merge_frontier(parts: list[np.ndarray]) -> np.ndarray:
    """Merge per-chunk next-frontiers; dedupe across chunks (shared targets)."""
    if not parts:
        return np.empty(0, dtype=np.int64)
    merged = np.concatenate(parts)
    return np.unique(merged)


def bfs_bottom_up(
    graph: CSR,
    source: int,
    runtime: ParallelRuntime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pure bottom-up BFS (every level scans the unvisited set).

    Mainly useful for testing and for graphs whose frontiers are large from
    level 1; the direction-optimizing variant below chooses per level.
    """
    n = graph.num_vertices()
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[source] = True
    level = 0
    frontier_size = 1
    while frontier_size:
        level += 1
        candidates = np.flatnonzero(dist < 0)
        if runtime is None:
            nxt, _ = _expand_bottom_up(
                graph, in_frontier, dist, parent, level, candidates
            )
        else:
            chunks = runtime.partition(candidates)
            parts = runtime.parallel_for(
                chunks,
                lambda c: _task_bottom_up(
                    graph, in_frontier, dist, parent, level, c
                ),
                phase=f"bfs_bu_level_{level}",
            )
            nxt = _merge_frontier(parts)
        in_frontier[:] = False
        in_frontier[nxt] = True
        frontier_size = nxt.size
    return dist, parent


def _task_bottom_up(graph, in_frontier, dist, parent, level, chunk):
    nxt, work = _expand_bottom_up(graph, in_frontier, dist, parent, level, chunk)
    return TaskResult(nxt, work + chunk.size)


def bfs_direction_optimizing(
    graph: CSR,
    source: int,
    runtime: ParallelRuntime | None = None,
    alpha: float = ALPHA,
    beta: float = BETA,
) -> tuple[np.ndarray, np.ndarray]:
    """Beamer's direction-optimizing BFS (the AdjoinBFS engine).

    Switch top-down → bottom-up when the frontier's out-edge count exceeds
    ``unexplored_edges / alpha``; switch back when the frontier shrinks
    below ``n / beta`` vertices.
    """
    n = graph.num_vertices()
    total_edges = graph.num_edges()
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[source] = True
    unexplored = total_edges
    level = 0
    bottom_up = False
    while frontier.size:
        level += 1
        scout = frontier_edge_count(graph, frontier)
        if not bottom_up and scout > unexplored / alpha:
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False
        unexplored -= scout
        if bottom_up:
            candidates = np.flatnonzero(dist < 0)
            if runtime is None:
                nxt, _ = _expand_bottom_up(
                    graph, in_frontier, dist, parent, level, candidates
                )
            else:
                parts = runtime.parallel_for(
                    runtime.partition(candidates),
                    lambda c: _task_bottom_up(
                        graph, in_frontier, dist, parent, level, c
                    ),
                    phase=f"bfs_do_bu_level_{level}",
                )
                nxt = _merge_frontier(parts)
        else:
            if runtime is None:
                nxt, _ = _expand_top_down(graph, frontier, dist, parent, level)
            else:
                parts = runtime.parallel_for(
                    runtime.partition(frontier),
                    lambda c: _task_top_down(graph, c, dist, parent, level),
                    phase=f"bfs_do_td_level_{level}",
                )
                nxt = _merge_frontier(parts)
        in_frontier[:] = False
        in_frontier[nxt] = True
        frontier = nxt
    return dist, parent

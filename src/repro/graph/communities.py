"""Label-propagation community detection (LPA) on CSR graphs.

Used by :mod:`repro.io.pipeline` to reproduce the paper's dataset
preparation: the com-Orkut/Friendster hypergraphs of Table I were
"materialized by running a community detection algorithm on the original
dataset" (§IV-B), each community becoming one hyperedge.

This is asynchronous LPA (Raghavan et al.): every round each vertex adopts
the most frequent label among its neighbors, keeping its current label
when that is already among the maximal ones and otherwise breaking ties
with the seeded RNG — deterministic given the seed, and free of both the
synchronous bipartite oscillation and the low-ID flooding a "smallest
label wins" tie-break would cause.
"""

from __future__ import annotations

import numpy as np

from repro.structures.csr import CSR

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    graph: CSR,
    max_rounds: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Community labels per vertex (labels are member vertex IDs).

    Deterministic given ``seed``.  Isolated vertices form singleton
    communities.  Converges when a full round changes no label (guaranteed
    ≤ ``max_rounds``; returns the current labeling if the cap is hit).
    """
    n = graph.num_vertices()
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or graph.num_edges() == 0:
        return labels
    rng = np.random.default_rng(seed)
    indptr, indices = graph.indptr, graph.indices
    for _ in range(max_rounds):
        changed = 0
        order = rng.permutation(n)
        for v in order.tolist():
            row = indices[indptr[v] : indptr[v + 1]]
            if row.size == 0:
                continue
            neigh_labels = labels[row]
            values, counts = np.unique(neigh_labels, return_counts=True)
            top = values[counts == counts.max()]
            if labels[v] in top:
                continue  # current label already maximal: stable
            best = int(top[rng.integers(top.size)])
            labels[v] = best
            changed += 1
        if not changed:
            break
    return labels

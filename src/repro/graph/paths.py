"""Distance-derived metrics: eccentricity, closeness, harmonic closeness.

These back the remaining ``s_*`` queries of Listing 5
(``s_eccentricity``, ``s_closeness_centrality``,
``s_harmonic_closeness_centrality``).  Conventions follow the hypergraph
literature (Aksoy et al. [2]) and networkx:

* distances are **hop counts** on the (s-line) graph, i.e. unweighted BFS;
* closeness of *v* is computed over the vertices *reachable from v*
  (per-component), scaled by the Wasserman–Faust component factor so
  disconnected graphs behave like networkx's default;
* harmonic closeness sums ``1/d`` over reachable vertices (no scaling
  needed — it is well-defined for disconnected graphs);
* eccentricity of *v* is the max distance within *v*'s component.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR

from .bfs import bfs_top_down

__all__ = [
    "all_pairs_hop_distance",
    "eccentricity",
    "closeness_centrality",
    "harmonic_closeness_centrality",
    "diameter",
]


def all_pairs_hop_distance(
    graph: CSR, sources: np.ndarray | None = None
) -> np.ndarray:
    """Dense hop-distance matrix (``-1`` = unreachable), one BFS per source.

    Intended for the moderate-size s-line graphs the metrics run on; for
    large graphs compute per-source with :func:`repro.graph.bfs.bfs_top_down`.
    """
    n = graph.num_vertices()
    srcs = np.arange(n, dtype=np.int64) if sources is None else (
        np.asarray(sources, dtype=np.int64)
    )
    out = np.full((srcs.size, n), -1, dtype=np.int64)
    for row, s in enumerate(srcs.tolist()):
        out[row], _ = bfs_top_down(graph, s)
    return out


def eccentricity(
    graph: CSR,
    vertices: np.ndarray | None = None,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Max hop distance from each vertex within its own component.

    Isolated vertices get eccentricity 0.
    """
    n = graph.num_vertices()
    verts = np.arange(n, dtype=np.int64) if vertices is None else (
        np.asarray(vertices, dtype=np.int64)
    )

    def one(v: int) -> tuple[float, int]:
        dist, _ = bfs_top_down(graph, v)
        reach = dist[dist >= 0]
        return float(reach.max()) if reach.size else 0.0, int(reach.size)

    return _per_vertex(graph, verts, one, runtime, "eccentricity")


def closeness_centrality(
    graph: CSR,
    vertices: np.ndarray | None = None,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Wasserman–Faust closeness: ``((r-1)/(n-1)) * ((r-1)/Σd)``.

    ``r`` is the size of the vertex's reachable set (incl. itself); 0 for
    isolated vertices.  Matches ``networkx.closeness_centrality`` with
    ``wf_improved=True``.
    """
    n = graph.num_vertices()
    verts = np.arange(n, dtype=np.int64) if vertices is None else (
        np.asarray(vertices, dtype=np.int64)
    )

    def one(v: int) -> tuple[float, int]:
        dist, _ = bfs_top_down(graph, v)
        reach = dist[dist > 0]
        if reach.size == 0 or n <= 1:
            return 0.0, 1
        r = reach.size + 1
        value = ((r - 1) / (n - 1)) * ((r - 1) / float(reach.sum()))
        return value, r

    return _per_vertex(graph, verts, one, runtime, "closeness")


def harmonic_closeness_centrality(
    graph: CSR,
    vertices: np.ndarray | None = None,
    normalized: bool = True,
    runtime: ParallelRuntime | None = None,
) -> np.ndarray:
    """Harmonic closeness: ``Σ_{u≠v reachable} 1/d(v,u)``.

    ``normalized=True`` divides by ``n - 1`` (so a star center scores 1.0).
    """
    n = graph.num_vertices()
    verts = np.arange(n, dtype=np.int64) if vertices is None else (
        np.asarray(vertices, dtype=np.int64)
    )
    scale = 1.0 / (n - 1) if (normalized and n > 1) else 1.0

    def one(v: int) -> tuple[float, int]:
        dist, _ = bfs_top_down(graph, v)
        reach = dist[dist > 0].astype(np.float64)
        return (float((1.0 / reach).sum()) * scale if reach.size else 0.0), (
            reach.size + 1
        )

    return _per_vertex(graph, verts, one, runtime, "harmonic")


def diameter(graph: CSR) -> int:
    """Max eccentricity over all vertices (per-component; -∞-free).

    Returns 0 for the empty graph.
    """
    ecc = eccentricity(graph)
    return int(ecc.max()) if ecc.size else 0


def _per_vertex(graph, verts, one, runtime, phase) -> np.ndarray:
    values = np.zeros(verts.size, dtype=np.float64)
    if runtime is None:
        for i, v in enumerate(verts.tolist()):
            values[i], _ = one(v)
        return values
    chunks = runtime.partition(np.arange(verts.size, dtype=np.int64))

    def body(chunk: np.ndarray) -> TaskResult:
        work = 0
        for i in chunk.tolist():
            # owner-computes: chunks partition the index space, so each
            # task writes a disjoint slice of `values`
            values[i], touched = one(int(verts[i]))  # repro: noqa-R003
            work += touched
        return TaskResult(None, float(work + chunk.size))

    runtime.parallel_for(chunks, body, phase=phase)
    return values
